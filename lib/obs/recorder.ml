(* Allocation-disciplined per-request flight recorder; see recorder.mli.

   Storage is two flat arrays (timestamps as unboxed floats, metadata as
   ints) indexed by [slot * stride + field]: recording a span is a handful
   of array stores and never allocates.  Slot acquisition is an atomic
   counter so the same recorder works both on the single-domain simulator
   hot path and on the multicore runtime (each slot is owned by exactly
   one request; cross-domain visibility of its cells is ordered by the
   ring push/pop the request itself travels through). *)

type t = {
  server : int;
  capacity : int;
  sample_rate : float;
  sample_threshold : int; (* of the 30-bit id hash, for try_sample_id *)
  ts : float array; (* capacity * Span.n_ts *)
  meta : int array; (* capacity * Span.n_meta *)
  next : int Atomic.t;
  dropped : int Atomic.t;
  rng : Dsim.Rng.t; (* try_sample's deterministic sampling stream *)
}

let create ?(server = 0) ?(capacity = 65536) ?(sample_rate = 1.0) ~seed () =
  if server < 0 then invalid_arg "Recorder.create: server must be >= 0";
  if capacity < 1 then invalid_arg "Recorder.create: capacity must be >= 1";
  if not (sample_rate > 0.0 && sample_rate <= 1.0) then
    invalid_arg "Recorder.create: sample_rate out of (0, 1]";
  {
    server;
    capacity;
    sample_rate;
    sample_threshold =
      (let bits = 1 lsl 30 in
       let t = int_of_float (sample_rate *. float_of_int bits) in
       if t < 1 then 1 else if t > bits then bits else t);
    ts = Array.make (capacity * Span.n_ts) Float.nan;
    meta = Array.make (capacity * Span.n_meta) (-1);
    next = Atomic.make 0;
    dropped = Atomic.make 0;
    rng = Dsim.Rng.create (seed lxor 0x0b5eca11);
  }

let server t = t.server
let capacity t = t.capacity
let sample_rate t = t.sample_rate
let recorded t = min (Atomic.get t.next) t.capacity
let dropped t = Atomic.get t.dropped

let acquire t =
  let slot = Atomic.fetch_and_add t.next 1 in
  if slot < t.capacity then begin
    (* Reset the slot: create fills arrays once, but a recorder may be
       reused across runs via [reset]. *)
    let tb = slot * Span.n_ts in
    for i = 0 to Span.n_ts - 1 do
      t.ts.(tb + i) <- Float.nan
    done;
    let mb = slot * Span.n_meta in
    for i = 0 to Span.n_meta - 1 do
      t.meta.(mb + i) <- -1
    done;
    slot
  end
  else begin
    Atomic.incr t.dropped;
    -1
  end

let try_sample t =
  (* Draw before checking capacity so the sampling stream consumes one
     value per offered request regardless of ring occupancy: two runs of
     the same workload sample identical request sets. *)
  if t.sample_rate >= 1.0 then acquire t
  else if Dsim.Rng.unit_float t.rng < t.sample_rate then acquire t
  else -1

(* SplitMix-style finalizer over the low bits of an id; used by the
   multicore runtime, where a shared RNG would be a race and a
   nondeterministic sample set. *)
let mix_id id =
  let z = id * 0x9e3779b9 in
  let z = (z lxor (z lsr 16)) * 0x85ebca6b in
  let z = (z lxor (z lsr 13)) * 0xc2b2ae35 in
  (z lxor (z lsr 16)) land 0x3FFFFFFF

let try_sample_id t ~id =
  if t.sample_rate >= 1.0 then acquire t
  else if mix_id id < t.sample_threshold then acquire t
  else -1

let set_ts t slot field v = t.ts.((slot * Span.n_ts) + field) <- v
let get_ts t slot field = t.ts.((slot * Span.n_ts) + field)
let set_meta t slot field v = t.meta.((slot * Span.n_meta) + field) <- v
let get_meta t slot field = t.meta.((slot * Span.n_meta) + field)
let complete t slot = not (Float.is_nan (get_ts t slot Span.ts_end))

let reset t =
  Atomic.set t.next 0;
  Atomic.set t.dropped 0
