(** Chrome trace-event JSON exporter (Perfetto / chrome://tracing).

    Emits one JSON object with a [traceEvents] array:

    - metadata ([ph:"M"]) naming the process and one track per core
      ([tid] = core id), per TX queue ([tid] = 1000 + queue) and for the
      control loop;
    - per complete span: an async request span ([ph:"b"]/[ "e"], [cat]
      ["request"], [id] = request seq) from RX enqueue to end-to-end
      completion, with async-instant steps for poll / classify / handoff;
      a [B]/[E] "service" pair on the serving core's track (service is
      run-to-completion, so the pairs nest trivially per track); and an
      [X] "tx" complete event on the TX-queue track (reply transmissions
      may overlap, which [X] events allow);
    - counter events ([ph:"C"]) for per-core RX depth and utilization
      from the {!Timeline}, and for the control loop's threshold and core
      split from the {!Decision_log}.

    Every event carries the recorder's server id as its [pid], so a
    single-server trace renders as process 0 and a cluster trace
    ({!write_cluster}) as one process group per shard.

    Timestamps are microseconds formatted with fixed precision, and
    events are emitted in deterministic (slot/sample) order, so two runs
    with the same seed produce byte-identical files. *)

val write :
  path:string ->
  ?name:string ->
  ?timeline:Timeline.t ->
  ?decisions:Decision_log.t ->
  Recorder.t ->
  unit

val to_buffer :
  ?name:string ->
  ?timeline:Timeline.t ->
  ?decisions:Decision_log.t ->
  Recorder.t ->
  Buffer.t ->
  unit
(** Same, into a caller-supplied buffer (used by the tests). *)

val write_cluster : path:string -> (string * Instrument.t) list -> unit
(** One merged trace for a cluster run: each [(name, instrument)] pair
    becomes a process section whose [pid] is the instrument recorder's
    server id.  Section order and per-section event order are
    deterministic, so fixed-seed cluster traces are byte-identical. *)

val cluster_to_buffer : (string * Instrument.t) list -> Buffer.t -> unit
