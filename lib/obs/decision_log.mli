(** Control-loop decision log.

    One entry per control epoch: when it fired, the size threshold it
    chose and the resulting small/large core split.  Bounded and
    preallocated; recording never allocates.  Entries past the capacity
    are counted in {!dropped}. *)

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 4096 epochs. *)

val record :
  t ->
  ?lost:int ->
  now:float ->
  threshold:float ->
  n_small:int ->
  n_large:int ->
  unit ->
  unit
(** [lost] is the cumulative count of requests lost so far (NIC drops +
    ring drops + shed), so traces show loss accumulating per epoch. *)

val length : t -> int
val dropped : t -> int

val time : t -> int -> float
val threshold : t -> int -> float
val n_small : t -> int -> int
val n_large : t -> int -> int
val lost : t -> int -> int

val moves : t -> int
(** Number of epochs whose decision changed [n_large] — how often the
    control loop re-partitioned the cores. *)
