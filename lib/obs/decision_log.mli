(** Control-loop / reshard decision log.

    One entry per control epoch ({!record}: when it fired, the size
    threshold it chose and the resulting small/large core split) or per
    shard-manager protocol state change ({!record_reshard}: drain /
    dual-route / cutover / replica events, epoch-stamped).  Bounded and
    preallocated; recording never allocates.  Entries past the capacity
    are counted in {!dropped}. *)

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 4096 entries. *)

val record :
  t ->
  ?lost:int ->
  now:float ->
  threshold:float ->
  n_small:int ->
  n_large:int ->
  unit ->
  unit
(** A control-loop entry (kind {!kind_control}).  [lost] is the
    cumulative count of requests lost so far (NIC drops + ring drops +
    shed), so traces show loss accumulating per epoch. *)

(** {2 Reshard entries} *)

val kind_control : int
val kind_drain_start : int
val kind_dual_start : int
val kind_cutover : int
val kind_replica_add : int
val kind_replica_drop : int
val kind_server_kill : int
val kind_server_recover : int
val kind_hedge_delay : int
val kind_name : int -> string

val record_reshard :
  t -> kind:int -> now:float -> until:float -> server:int -> shard:int ->
  epoch:int -> unit
(** A shard-manager protocol state change.  [until] is the window end
    for {!kind_dual_start} (nan for instants); [server] the
    joining/leaving server or replica id ([-1] if n/a); [shard] the
    replicated shard or the cutover key group; [epoch] the routing epoch
    in force.  Raises [Invalid_argument] on a non-reshard kind. *)

(** {2 Hedge-cluster entries} *)

val record_hedge :
  t -> kind:int -> now:float -> server:int -> delay_us:float -> unit
(** A tail-cutting event: a server crash ({!kind_server_kill}) or
    restart ({!kind_server_recover}) with [server] set and [delay_us]
    nan, or a hedge-delay re-estimate ({!kind_hedge_delay}) with the new
    delay in [delay_us] (readable back through {!threshold}) and
    [server] [-1].  Raises [Invalid_argument] on a non-hedge kind. *)

val length : t -> int
val dropped : t -> int

val kind : t -> int -> int
val time : t -> int -> float
val until_us : t -> int -> float
val threshold : t -> int -> float
val n_small : t -> int -> int
val n_large : t -> int -> int
val lost : t -> int -> int
val server : t -> int -> int
val shard : t -> int -> int
val epoch : t -> int -> int

val moves : t -> int
(** Number of control epochs whose decision changed [n_large] — how
    often the control loop re-partitioned the cores.  Reshard entries
    are skipped. *)
