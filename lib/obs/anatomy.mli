(** Latency anatomy: where each microsecond of a request's end-to-end
    latency went.

    Every complete span decomposes into {!Span.n_components} telescoping
    deltas over its ordered timestamps —

    - [rx_wait]: RX enqueue → poll dequeue (head-of-line blocking and
      polling delay show up here);
    - [dispatch]: poll → service start (classification plus software
      handoff queueing in Minos/SHO);
    - [service]: CPU occupancy;
    - [tx]: service end → last reply frame on the wire (TX queueing and
      wire time);
    - [pipeline]: the constant client/NIC pipeline tail —

    whose sum equals the span's end-to-end latency {e exactly} (up to
    float rounding); {!t.max_sum_error_us} reports the worst observed
    deviation so exporters and tests can assert the invariant. *)

type stat = { n : int; mean : float; p50 : float; p99 : float }
(** All values in µs; [nan] when there are no samples. *)

type row = { component : string; small : stat; large : stat; all : stat }
(** Per size class (ground truth of the workload generator) and overall. *)

type t = {
  rows : row list; (** one per component, in component order *)
  end_to_end : row;
  spans_used : int; (** complete spans the table is built from *)
  max_sum_error_us : float;
      (** max over spans of |sum of components − end-to-end| *)
}

val compute : Recorder.t -> t
(** Build the anatomy table from every complete span in the recorder.
    Incomplete spans (no reply recorded — e.g. still in flight, or the
    reply was sampled away under §6.4 reply sampling) are skipped. *)
