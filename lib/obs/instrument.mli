(** The three collectors one instrumented run carries: the per-request
    flight {!Recorder}, an optional per-core {!Timeline} sampler and the
    control-loop {!Decision_log}.  Execution engines take an optional
    [Instrument.t]; when absent, every hook is a no-op. *)

type t = {
  recorder : Recorder.t;
  timeline : Timeline.t option;
  decisions : Decision_log.t;
}

val create :
  ?server:int ->
  ?spans:int ->
  ?sample_rate:float ->
  ?timeline_interval_us:float ->
  ?timeline_capacity:int ->
  ?timeline:bool ->
  cores:int ->
  seed:int ->
  unit ->
  t
(** [server], [spans] and [sample_rate] configure the recorder (defaults
    0, 65536 and 1.0; see {!Recorder.create}); the timeline samples every
    [timeline_interval_us] µs (default 500) for up to [timeline_capacity]
    samples, or is omitted entirely with [~timeline:false]. *)
