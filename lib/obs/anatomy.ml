(* Latency anatomy: decompose recorded spans into telescoping components;
   see anatomy.mli for the invariant. *)

type stat = { n : int; mean : float; p50 : float; p99 : float }

type row = { component : string; small : stat; large : stat; all : stat }

type t = {
  rows : row list;
  end_to_end : row;
  spans_used : int;
  max_sum_error_us : float;
}

let empty_stat = { n = 0; mean = Float.nan; p50 = Float.nan; p99 = Float.nan }

let stat_of_vec v =
  let n = Stats.Float_vec.length v in
  if n = 0 then empty_stat
  else
    match Stats.Quantile.many_of_vec v [ 0.5; 0.99 ] with
    | [ p50; p99 ] -> { n; mean = Stats.Quantile.mean_of_vec v; p50; p99 }
    | _ -> assert false

(* Component deltas for one complete span.  [poll] falls back to
   [service_start] when a design never reported a dequeue, so the
   telescoping sum always holds:
     (poll - rx) + (start - poll) + (end - start) + (tx - end)
       + (e2e_end - tx) = e2e_end - rx. *)
let components r slot out =
  let ts f = Recorder.get_ts r slot f in
  let rx = ts Span.ts_rx_enq in
  let start = ts Span.ts_service_start in
  let poll =
    let p = ts Span.ts_poll in
    if Float.is_nan p then start else p
  in
  let stop = ts Span.ts_service_end in
  let tx = ts Span.ts_tx_done in
  let e2e_end = ts Span.ts_end in
  out.(0) <- poll -. rx;
  out.(1) <- start -. poll;
  out.(2) <- stop -. start;
  out.(3) <- tx -. stop;
  out.(4) <- e2e_end -. tx;
  e2e_end -. rx

let compute recorder =
  let vec () = Stats.Float_vec.create ~capacity:1024 () in
  let per_class () = (vec (), vec (), vec ()) in
  let comps = Array.init Span.n_components (fun _ -> per_class ()) in
  let e2e = per_class () in
  let out = Array.make Span.n_components 0.0 in
  let spans_used = ref 0 in
  let max_err = ref 0.0 in
  let n = Recorder.recorded recorder in
  for slot = 0 to n - 1 do
    if Recorder.complete recorder slot then begin
      incr spans_used;
      let total = components recorder slot out in
      let large =
        Recorder.get_meta recorder slot Span.meta_class = Span.class_large
      in
      let add (s, l, a) v =
        (if large then Stats.Float_vec.push l v else Stats.Float_vec.push s v);
        Stats.Float_vec.push a v
      in
      let sum = ref 0.0 in
      for c = 0 to Span.n_components - 1 do
        sum := !sum +. out.(c);
        add comps.(c) out.(c)
      done;
      add e2e total;
      let err = Float.abs (!sum -. total) in
      if err > !max_err then max_err := err
    end
  done;
  let row name (s, l, a) =
    {
      component = name;
      small = stat_of_vec s;
      large = stat_of_vec l;
      all = stat_of_vec a;
    }
  in
  {
    rows =
      List.init Span.n_components (fun c ->
          row (Span.component_name c) comps.(c));
    end_to_end = row "end_to_end" e2e;
    spans_used = !spans_used;
    max_sum_error_us = !max_err;
  }
