(* Field layout of one flight-recorder span; see span.mli. *)

let ts_rx_enq = 0
let ts_poll = 1
let ts_classify = 2
let ts_handoff_enq = 3
let ts_handoff_deq = 4
let ts_service_start = 5
let ts_service_end = 6
let ts_tx_done = 7
let ts_end = 8
let n_ts = 9

let ts_name = function
  | 0 -> "rx_enqueue"
  | 1 -> "poll_dequeue"
  | 2 -> "classify"
  | 3 -> "handoff_enqueue"
  | 4 -> "handoff_dequeue"
  | 5 -> "service_start"
  | 6 -> "service_end"
  | 7 -> "tx_done"
  | 8 -> "end"
  | _ -> invalid_arg "Span.ts_name"

let meta_seq = 0
let meta_rx_queue = 1
let meta_core = 2
let meta_tx_queue = 3
let meta_class = 4
let meta_op = 5
let meta_size = 6
let n_meta = 7

let class_small = 0
let class_large = 1
let op_get = 0
let op_put = 1
let op_scan = 2

(* The five telescoping latency components (consecutive deltas over the
   ordered timestamps, plus the constant pipeline tail); by construction
   they sum to the end-to-end latency exactly. *)
let n_components = 5

let component_name = function
  | 0 -> "rx_wait"
  | 1 -> "dispatch"
  | 2 -> "service"
  | 3 -> "tx"
  | 4 -> "pipeline"
  | _ -> invalid_arg "Span.component_name"
