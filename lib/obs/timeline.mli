(** Per-core queue-depth and utilization time series.

    A bounded, preallocated sampler: the caller (the engine's periodic
    tick) opens a sample with {!start_sample} and fills one depth /
    cumulative-busy-µs pair per core.  Recording never allocates; when
    the capacity is reached further samples are ignored. *)

type t

val create : cores:int -> interval_us:float -> capacity:int -> t

val cores : t -> int

val interval_us : t -> float
(** The nominal sampling period (the caller schedules itself with it). *)

val samples : t -> int

val start_sample : t -> now:float -> int
(** Begin a sample at simulated/real time [now]; returns its index, or
    [-1] when the series is full. *)

val set_core : t -> sample:int -> core:int -> depth:int -> busy_us:float -> unit
(** [depth] is the core's RX-queue occupancy; [busy_us] its {e cumulative}
    busy time — {!utilization} differentiates consecutive samples. *)

val time : t -> int -> float
val depth : t -> int -> int -> int
val busy_us : t -> int -> int -> float

val utilization : t -> int -> int -> float
(** Busy fraction of the interval ending at the given sample, in [0, 1];
    0 for the first sample. *)
