(* Per-core queue-depth / utilization time series; see timeline.mli. *)

type t = {
  cores : int;
  interval_us : float;
  capacity : int;
  times : float array; (* capacity *)
  depth : int array; (* capacity * cores *)
  busy : float array; (* capacity * cores, cumulative busy µs *)
  mutable n : int;
}

let create ~cores ~interval_us ~capacity =
  if cores < 1 then invalid_arg "Timeline.create: cores must be >= 1";
  if not (interval_us > 0.0) then
    invalid_arg "Timeline.create: interval_us must be > 0";
  if capacity < 1 then invalid_arg "Timeline.create: capacity must be >= 1";
  {
    cores;
    interval_us;
    capacity;
    times = Array.make capacity Float.nan;
    depth = Array.make (capacity * cores) 0;
    busy = Array.make (capacity * cores) 0.0;
    n = 0;
  }

let cores t = t.cores
let interval_us t = t.interval_us
let samples t = t.n

let start_sample t ~now =
  if t.n >= t.capacity then -1
  else begin
    let s = t.n in
    t.times.(s) <- now;
    t.n <- s + 1;
    s
  end

let set_core t ~sample ~core ~depth ~busy_us =
  let i = (sample * t.cores) + core in
  t.depth.(i) <- depth;
  t.busy.(i) <- busy_us

let time t s = t.times.(s)
let depth t s core = t.depth.((s * t.cores) + core)
let busy_us t s core = t.busy.((s * t.cores) + core)

(* Utilization of [core] over the interval ending at sample [s]: the
   busy-time delta against the previous sample, clamped to [0, 1].  The
   first sample has no predecessor and reports 0. *)
let utilization t s core =
  if s = 0 then 0.0
  else begin
    let dt = t.times.(s) -. t.times.(s - 1) in
    if not (dt > 0.0) then 0.0
    else begin
      let db = busy_us t s core -. busy_us t (s - 1) core in
      let u = db /. dt in
      if u < 0.0 then 0.0 else if u > 1.0 then 1.0 else u
    end
  end
