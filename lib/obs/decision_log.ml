(* Bounded control-loop decision log; see decision_log.mli. *)

type t = {
  capacity : int;
  times : float array;
  thresholds : float array;
  n_small : int array;
  n_large : int array;
  lost : int array;
  mutable n : int;
  mutable dropped : int;
}

let create ?(capacity = 4096) () =
  if capacity < 1 then invalid_arg "Decision_log.create: capacity must be >= 1";
  {
    capacity;
    times = Array.make capacity Float.nan;
    thresholds = Array.make capacity Float.nan;
    n_small = Array.make capacity 0;
    n_large = Array.make capacity 0;
    lost = Array.make capacity 0;
    n = 0;
    dropped = 0;
  }

let record t ?(lost = 0) ~now ~threshold ~n_small ~n_large () =
  if t.n >= t.capacity then t.dropped <- t.dropped + 1
  else begin
    let i = t.n in
    t.times.(i) <- now;
    t.thresholds.(i) <- threshold;
    t.n_small.(i) <- n_small;
    t.n_large.(i) <- n_large;
    t.lost.(i) <- lost;
    t.n <- i + 1
  end

let length t = t.n
let dropped t = t.dropped
let time t i = t.times.(i)
let threshold t i = t.thresholds.(i)
let n_small t i = t.n_small.(i)
let n_large t i = t.n_large.(i)
let lost t i = t.lost.(i)

(* Number of epochs whose decision changed the small/large core split —
   the n_small -> n_large "moves" the paper's control loop makes. *)
let moves t =
  let m = ref 0 in
  for i = 1 to t.n - 1 do
    if t.n_large.(i) <> t.n_large.(i - 1) then incr m
  done;
  !m
