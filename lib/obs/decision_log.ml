(* Bounded control-loop / reshard decision log; see decision_log.mli. *)

let kind_control = 0
let kind_drain_start = 1
let kind_dual_start = 2
let kind_cutover = 3
let kind_replica_add = 4
let kind_replica_drop = 5
let kind_server_kill = 6
let kind_server_recover = 7
let kind_hedge_delay = 8

let kind_name = function
  | 0 -> "control"
  | 1 -> "drain_start"
  | 2 -> "dual_start"
  | 3 -> "cutover"
  | 4 -> "replica_add"
  | 5 -> "replica_drop"
  | 6 -> "server_kill"
  | 7 -> "server_recover"
  | 8 -> "hedge_delay"
  | _ -> "unknown"

type t = {
  capacity : int;
  kinds : int array;
  times : float array;
  untils : float array; (* reshard window end; nan for instants *)
  thresholds : float array;
  n_small : int array;
  n_large : int array;
  lost : int array;
  servers : int array; (* reshard: joining/leaving server, -1 n/a *)
  shards : int array; (* reshard: shard or cutover key group *)
  epochs : int array; (* reshard: routing epoch in force *)
  mutable n : int;
  mutable dropped : int;
}

let create ?(capacity = 4096) () =
  if capacity < 1 then invalid_arg "Decision_log.create: capacity must be >= 1";
  {
    capacity;
    kinds = Array.make capacity 0;
    times = Array.make capacity Float.nan;
    untils = Array.make capacity Float.nan;
    thresholds = Array.make capacity Float.nan;
    n_small = Array.make capacity 0;
    n_large = Array.make capacity 0;
    lost = Array.make capacity 0;
    servers = Array.make capacity (-1);
    shards = Array.make capacity (-1);
    epochs = Array.make capacity 0;
    n = 0;
    dropped = 0;
  }

let record t ?(lost = 0) ~now ~threshold ~n_small ~n_large () =
  if t.n >= t.capacity then t.dropped <- t.dropped + 1
  else begin
    let i = t.n in
    t.kinds.(i) <- kind_control;
    t.times.(i) <- now;
    t.thresholds.(i) <- threshold;
    t.n_small.(i) <- n_small;
    t.n_large.(i) <- n_large;
    t.lost.(i) <- lost;
    t.n <- i + 1
  end

let record_reshard t ~kind ~now ~until ~server ~shard ~epoch =
  if kind < 1 || kind > 5 then
    invalid_arg "Decision_log.record_reshard: not a reshard kind";
  if t.n >= t.capacity then t.dropped <- t.dropped + 1
  else begin
    let i = t.n in
    t.kinds.(i) <- kind;
    t.times.(i) <- now;
    t.untils.(i) <- until;
    t.servers.(i) <- server;
    t.shards.(i) <- shard;
    t.epochs.(i) <- epoch;
    t.n <- i + 1
  end

(* Hedge-cluster entries: crash instants and hedge-delay re-estimates.
   The delay rides in the thresholds column — both are the "control
   value chosen at this instant" of their loop. *)
let record_hedge t ~kind ~now ~server ~delay_us =
  if kind < 6 || kind > 8 then
    invalid_arg "Decision_log.record_hedge: not a hedge kind";
  if t.n >= t.capacity then t.dropped <- t.dropped + 1
  else begin
    let i = t.n in
    t.kinds.(i) <- kind;
    t.times.(i) <- now;
    t.servers.(i) <- server;
    t.thresholds.(i) <- delay_us;
    t.n <- i + 1
  end

let length t = t.n
let dropped t = t.dropped
let kind t i = t.kinds.(i)
let time t i = t.times.(i)
let until_us t i = t.untils.(i)
let threshold t i = t.thresholds.(i)
let n_small t i = t.n_small.(i)
let n_large t i = t.n_large.(i)
let lost t i = t.lost.(i)
let server t i = t.servers.(i)
let shard t i = t.shards.(i)
let epoch t i = t.epochs.(i)

(* Number of control epochs whose decision changed the small/large core
   split — the n_small -> n_large "moves" the paper's control loop
   makes.  Reshard entries are not decisions of this loop and are
   skipped. *)
let moves t =
  let m = ref 0 in
  let prev = ref min_int in
  for i = 0 to t.n - 1 do
    if t.kinds.(i) = kind_control then begin
      if !prev <> min_int && t.n_large.(i) <> !prev then incr m;
      prev := t.n_large.(i)
    end
  done;
  !m
