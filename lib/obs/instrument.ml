(* Bundle of the three collectors one instrumented run carries. *)

type t = {
  recorder : Recorder.t;
  timeline : Timeline.t option;
  decisions : Decision_log.t;
}

let create ?server ?spans ?sample_rate ?(timeline_interval_us = 500.0)
    ?(timeline_capacity = 8192) ?(timeline = true) ~cores ~seed () =
  {
    recorder = Recorder.create ?server ?capacity:spans ?sample_rate ~seed ();
    timeline =
      (if timeline then
         Some
           (Timeline.create ~cores ~interval_us:timeline_interval_us
              ~capacity:timeline_capacity)
       else None);
    decisions = Decision_log.create ();
  }
