(* Chrome trace-event JSON exporter; see chrome_trace.mli.

   Offline export path: runs once after a simulation/serve finishes, so
   the Printf use here is reviewed in lint_allow.txt (the record path in
   Recorder/Timeline/Decision_log stays allocation- and Printf-free).
   All numbers are formatted with fixed precision so traces are
   byte-identical across runs of the same seed. *)

let esc s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let ts_s v = Printf.sprintf "%.3f" v

(* For values that may be non-finite (a control loop that has never seen
   a large request reports threshold infinity): JSON has no inf/nan. *)
let num_s v = if Float.is_finite v then Printf.sprintf "%.3f" v else "null"

(* Track (tid) layout: cores at their id, TX queues offset, one synthetic
   track for the control loop.  Tids are per-pid, so every server section
   of a cluster trace reuses the same layout under its own pid. *)
let tx_tid q = 1000 + q
let reshard_tid = 9998
let control_tid = 9999

type emitter = { buf : Buffer.t; mutable first : bool }

let event e fmt =
  Printf.ksprintf
    (fun body ->
      if e.first then e.first <- false else Buffer.add_string e.buf ",\n";
      Buffer.add_string e.buf "  {";
      Buffer.add_string e.buf body;
      Buffer.add_char e.buf '}')
    fmt

let thread_name e ~pid ~tid name =
  event e
    {|"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":"%s"}|}
    pid tid (esc name)

let kind_label k = esc (Decision_log.kind_name k)

let span_events e ~pid r slot =
  let ts f = Recorder.get_ts r slot f in
  let meta f = Recorder.get_meta r slot f in
  let seq = meta Span.meta_seq in
  let core = meta Span.meta_core in
  let txq = meta Span.meta_tx_queue in
  let rx_queue = meta Span.meta_rx_queue in
  let cls =
    if meta Span.meta_class = Span.class_large then "large" else "small"
  in
  let op =
    let m = meta Span.meta_op in
    if m = Span.op_put then "put" else if m = Span.op_scan then "scan" else "get"
  in
  let t0 = ts Span.ts_rx_enq in
  let t_start = ts Span.ts_service_start in
  let t_stop = ts Span.ts_service_end in
  let t_tx = ts Span.ts_tx_done in
  let t_end = ts Span.ts_end in
  (* Async request span: RX enqueue to end-to-end completion. *)
  event e
    {|"ph":"b","cat":"request","id":%d,"name":"%s","pid":%d,"tid":%d,"ts":%s|}
    seq cls pid rx_queue (ts_s t0);
  List.iter
    (fun f ->
      let v = ts f in
      if not (Float.is_nan v) then
        event e
          {|"ph":"n","cat":"request","id":%d,"name":"%s","pid":%d,"tid":%d,"ts":%s,"args":{"step":"%s"}|}
          seq cls pid rx_queue (ts_s v) (Span.ts_name f))
    [ Span.ts_poll; Span.ts_classify; Span.ts_handoff_enq; Span.ts_handoff_deq ];
  event e
    {|"ph":"e","cat":"request","id":%d,"name":"%s","pid":%d,"tid":%d,"ts":%s,"args":{"e2e_us":%s,"bytes":%d,"op":"%s"}|}
    seq cls pid rx_queue (ts_s t_end)
    (ts_s (t_end -. t0))
    (meta Span.meta_size) op;
  (* Service occupies the serving core; cores run one request at a time,
     so these B/E pairs are disjoint per track. *)
  event e {|"ph":"B","name":"service","pid":%d,"tid":%d,"ts":%s,"args":{"id":%d}|}
    pid core (ts_s t_start) seq;
  event e {|"ph":"E","name":"service","pid":%d,"tid":%d,"ts":%s|} pid core
    (ts_s t_stop);
  (* Reply transmission: messages on one TX queue can overlap (frames are
     round-robined), so use complete events, which need not nest. *)
  if t_tx >= t_stop then
    event e
      {|"ph":"X","name":"tx","pid":%d,"tid":%d,"ts":%s,"dur":%s,"args":{"id":%d}|}
      pid
      (tx_tid (if txq >= 0 then txq else core))
      (ts_s t_stop)
      (ts_s (t_tx -. t_stop))
      seq

let counter_args_int tl s =
  String.concat ","
    (List.init (Timeline.cores tl) (fun c ->
         Printf.sprintf {|"core%d":%d|} c (Timeline.depth tl s c)))

let counter_args_util tl s =
  String.concat ","
    (List.init (Timeline.cores tl) (fun c ->
         Printf.sprintf {|"core%d":%.4f|} c (Timeline.utilization tl s c)))

(* One server's worth of events, all under process id [pid]. *)
let section e ~pid ~name ?timeline ?decisions recorder =
  event e
    {|"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":"%s"}|}
    pid (esc name);
  (* Name the per-core and per-TX-queue tracks we will reference. *)
  let max_core = ref (-1) and max_tx = ref (-1) in
  (match timeline with
  | Some tl -> max_core := Timeline.cores tl - 1
  | None -> ());
  let n = Recorder.recorded recorder in
  for slot = 0 to n - 1 do
    if Recorder.complete recorder slot then begin
      let m f = Recorder.get_meta recorder slot f in
      if m Span.meta_core > !max_core then max_core := m Span.meta_core;
      if m Span.meta_rx_queue > !max_core then max_core := m Span.meta_rx_queue;
      let txq = m Span.meta_tx_queue in
      let txq = if txq >= 0 then txq else m Span.meta_core in
      if txq > !max_tx then max_tx := txq
    end
  done;
  for c = 0 to !max_core do
    thread_name e ~pid ~tid:c (Printf.sprintf "core %d" c)
  done;
  for q = 0 to !max_tx do
    thread_name e ~pid ~tid:(tx_tid q) (Printf.sprintf "tx %d" q)
  done;
  if decisions <> None then thread_name e ~pid ~tid:control_tid "control";
  (match decisions with
  | Some d ->
      let has_reshard = ref false in
      for i = 0 to Decision_log.length d - 1 do
        if Decision_log.kind d i <> Decision_log.kind_control then
          has_reshard := true
      done;
      if !has_reshard then thread_name e ~pid ~tid:reshard_tid "reshard"
  | None -> ());
  for slot = 0 to n - 1 do
    if Recorder.complete recorder slot then span_events e ~pid recorder slot
  done;
  (match timeline with
  | None -> ()
  | Some tl ->
      for s = 0 to Timeline.samples tl - 1 do
        event e {|"ph":"C","name":"rx_depth","pid":%d,"tid":0,"ts":%s,"args":{%s}|}
          pid
          (ts_s (Timeline.time tl s))
          (counter_args_int tl s);
        event e
          {|"ph":"C","name":"utilization","pid":%d,"tid":0,"ts":%s,"args":{%s}|}
          pid
          (ts_s (Timeline.time tl s))
          (counter_args_util tl s)
      done);
  match decisions with
  | None -> ()
  | Some d ->
      for i = 0 to Decision_log.length d - 1 do
        let k = Decision_log.kind d i in
        if k = Decision_log.kind_control then
          event e
            {|"ph":"C","name":"control","pid":%d,"tid":%d,"ts":%s,"args":{"threshold_B":%s,"n_small":%d,"n_large":%d,"lost":%d}|}
            pid control_tid
            (ts_s (Decision_log.time d i))
            (num_s (Decision_log.threshold d i))
            (Decision_log.n_small d i) (Decision_log.n_large d i)
            (Decision_log.lost d i)
        else if k >= Decision_log.kind_server_kill then
          (* Tail-cutting events: crash/restart instants and hedge-delay
             re-estimates, on the reshard track. *)
          event e
            {|"ph":"i","s":"p","name":"%s","pid":%d,"tid":%d,"ts":%s,"args":{"server":%d,"delay_us":%s}|}
            (kind_label k) pid reshard_tid
            (ts_s (Decision_log.time d i))
            (Decision_log.server d i)
            (num_s (Decision_log.threshold d i))
        else begin
          (* Reshard protocol state changes: dual-route windows as
             complete spans, everything else as instants, all on the
             dedicated reshard track. *)
          let until = Decision_log.until_us d i in
          if not (Float.is_nan until) then
            event e
              {|"ph":"X","name":"%s","pid":%d,"tid":%d,"ts":%s,"dur":%s,"args":{"server":%d,"shard":%d,"epoch":%d}|}
              (kind_label k) pid reshard_tid
              (ts_s (Decision_log.time d i))
              (ts_s (until -. Decision_log.time d i))
              (Decision_log.server d i) (Decision_log.shard d i)
              (Decision_log.epoch d i)
          else
            event e
              {|"ph":"i","s":"p","name":"%s","pid":%d,"tid":%d,"ts":%s,"args":{"server":%d,"shard":%d,"epoch":%d}|}
              (kind_label k) pid reshard_tid
              (ts_s (Decision_log.time d i))
              (Decision_log.server d i) (Decision_log.shard d i)
              (Decision_log.epoch d i)
        end
      done

let to_buffer ?(name = "minos") ?timeline ?decisions recorder buf =
  let e = { buf; first = true } in
  Buffer.add_string buf "{\"traceEvents\":[\n";
  section e ~pid:(Recorder.server recorder) ~name ?timeline ?decisions recorder;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n"

let write ~path ?name ?timeline ?decisions recorder =
  let buf = Buffer.create 65536 in
  to_buffer ?name ?timeline ?decisions recorder buf;
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Buffer.output_buffer oc buf)

let cluster_to_buffer sections buf =
  let e = { buf; first = true } in
  Buffer.add_string buf "{\"traceEvents\":[\n";
  List.iter
    (fun (name, (i : Instrument.t)) ->
      section e
        ~pid:(Recorder.server i.Instrument.recorder)
        ~name ?timeline:i.Instrument.timeline ~decisions:i.Instrument.decisions
        i.Instrument.recorder)
    sections;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n"

let write_cluster ~path sections =
  let buf = Buffer.create 65536 in
  cluster_to_buffer sections buf;
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Buffer.output_buffer oc buf)
