(** Composable workload scenarios and the scenario registry.

    A scenario is the universal workload currency: it composes the flat
    size/popularity/mutation profile ({!Spec.t}) with an arrival process
    ({!Arrival.t}), a TTL + expiry-sweep policy, an ordered-SCAN mix and a
    memory budget (for larger-than-memory runs with eviction).  Front ends
    — Experiment, Chaos, Cluster, Reshard, Hedge and the CLI — select
    workloads through the registry ({!find} / {!all}), mirroring
    {!Kvserver.Design}: each registered scenario carries a name, aliases,
    a one-line summary and the knobs it documents, and {!parse} turns a
    CLI string ["name,k=v,…"] into a ready scenario.

    The paper's original specs ([Spec.default] / [paper_scale] /
    [write_intensive]) are registered constructors whose extra features
    are all inert, so every golden produced through them is byte-identical
    to the pre-scenario code. *)

type t = {
  label : string;
  spec : Spec.t;
  arrival : Arrival.t;
  ttl_us : float option;    (** TTL attached to every PUT *)
  sweep_us : float option;  (** background expiry-sweep period; [None] =
                                lazy-on-read expiry only *)
  scan_ratio : float;       (** fraction of requests that are SCANs *)
  scan_len : int;           (** keys per SCAN *)
  mem_fraction : float option;
      (** memory budget as a fraction of the dataset's total value bytes;
          [Some f < 1.0] forces LRU-ish eviction *)
  replay : bool;
      (** run through a captured timed trace instead of live pacing *)
}

val of_spec : ?label:string -> Spec.t -> t
(** Wrap a flat spec: Poisson arrivals, no TTL, no scans, no budget — the
    scenario equivalent of the original API, with byte-identical runs. *)

val default : t

val validate : t -> (unit, string) result

val plain : t -> bool
(** True when every scenario extra is inert (Poisson, no TTL / scans /
    budget / replay) — i.e. the run reduces to the original spec path. *)

val generator : ?seed:int -> t -> Dataset.t -> Generator.t
(** A generator for the scenario's mix (including its scan knobs). *)

val capture : ?seed:int -> t -> Dataset.t -> rate_mops:float -> n:int -> Trace.t
(** Draw [n] requests and timestamp them under the scenario's arrival
    process at the given base rate (Lewis–Shedler thinning): a timed
    trace that replays the scenario deterministically per [seed]. *)

(** {1 Registry} *)

type info = {
  name : string;
  aliases : string list;
  summary : string;
  knobs : (string * string) list; (** knob name, one-line doc *)
  base : t;
}

val common_knobs : (string * string) list
(** The [k=v] overrides {!make} accepts on every scenario. *)

val register : info -> unit
(** Raises [Invalid_argument] on a name/alias clash or an invalid base. *)

val all : unit -> info list
(** Registration order; builtins first: default, paper, write-intensive,
    diurnal, bursts, ttl-churn, scan-heavy, cold-tier. *)

val find : string -> info option
(** Case-insensitive lookup by name or alias. *)

val make : info -> (string * string) list -> (t, string) result
(** Apply [k=v] overrides to the entry's base scenario and validate. *)

val parse : string -> (t, string) result
(** ["name,k=v,…"] → scenario, via {!find} + {!make}. *)

val pp : Format.formatter -> t -> unit
