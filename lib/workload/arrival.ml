type t =
  | Poisson
  | Diurnal of { period_us : float; amplitude : float }
  | Bursts of { on_us : float; off_us : float; factor : float }

let validate = function
  | Poisson -> Ok ()
  | Diurnal { period_us; amplitude } ->
      if not (period_us > 0.0) then Error "diurnal period must be positive"
      else if amplitude < 0.0 || amplitude >= 1.0 then
        Error "diurnal amplitude out of [0, 1)"
      else Ok ()
  | Bursts { on_us; off_us; factor } ->
      if not (on_us > 0.0) || off_us < 0.0 then Error "burst windows must be positive"
      else if not (factor >= 0.0) then Error "burst factor must be >= 0"
      else Ok ()

let two_pi = 8.0 *. atan 1.0

(* Instantaneous offered rate (Mops = requests/us) at absolute time [now]
   for a base rate [base].  Pure in [now], so replaying any prefix of a
   run reproduces the same rates. *)
let rate_at t ~base now =
  match t with
  | Poisson -> base
  | Diurnal { period_us; amplitude } ->
      base *. (1.0 +. (amplitude *. sin (two_pi *. now /. period_us)))
  | Bursts { on_us; off_us; factor } ->
      let cycle = on_us +. off_us in
      let phase = Float.rem now cycle in
      if phase < on_us then base *. factor else base

(* Next time after [now] at which [rate_at] changes regime (used by the
   engine to park when the current rate is 0, e.g. bursts with factor 0
   modelling an on/off source). *)
let next_change t ~base:_ now =
  match t with
  | Poisson -> infinity
  | Diurnal { period_us; _ } ->
      (* Continuously varying; re-examine four times per cycle. *)
      let quarter = period_us /. 4.0 in
      (Float.of_int (int_of_float (now /. quarter)) +. 1.0) *. quarter
  | Bursts { on_us; off_us; _ } ->
      let cycle = on_us +. off_us in
      let k = Float.of_int (int_of_float (now /. cycle)) in
      let phase = now -. (k *. cycle) in
      if phase < on_us then (k *. cycle) +. on_us else (k +. 1.0) *. cycle

let max_rate t ~base =
  match t with
  | Poisson -> base
  | Diurnal { amplitude; _ } -> base *. (1.0 +. amplitude)
  | Bursts { factor; _ } -> base *. Float.max 1.0 factor

(* Deterministic timed arrival stream by Lewis–Shedler thinning: draw
   candidate points from a homogeneous Poisson process at the envelope
   rate and keep each with probability rate(t)/max_rate.  Exact for any
   bounded rate function, and a pure function of the seed. *)
let timestamps t ~base ~n ~seed =
  (match validate t with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Arrival.timestamps: " ^ msg));
  if n < 0 then invalid_arg "Arrival.timestamps: negative count";
  if not (base > 0.0) then invalid_arg "Arrival.timestamps: base rate must be > 0";
  let rng = Dsim.Rng.create seed in
  let envelope = max_rate t ~base in
  let ts = Array.make n 0.0 in
  let now = ref 0.0 in
  let i = ref 0 in
  while !i < n do
    now := !now +. Dsim.Rng.exponential rng ~mean:(1.0 /. envelope);
    if Dsim.Rng.unit_float rng *. envelope <= rate_at t ~base !now then begin
      ts.(!i) <- !now;
      incr i
    end
  done;
  ts

let pp fmt = function
  | Poisson -> Format.pp_print_string fmt "poisson"
  | Diurnal { period_us; amplitude } ->
      Format.fprintf fmt "diurnal(period=%.0fus, amplitude=%.2f)" period_us amplitude
  | Bursts { on_us; off_us; factor } ->
      Format.fprintf fmt "bursts(on=%.0fus, off=%.0fus, factor=%.2f)" on_us off_us
        factor
