type t = {
  p_large : float;
  s_large_max : int;
  get_ratio : float;
  zipf_theta : float;
  n_keys : int;
  n_large_keys : int;
  tiny_fraction : float;
  key_size : int;
}

let tiny_min = 1
let tiny_max = 13
let small_min = 14
let small_max = 1400
let large_min = 1500

let default =
  {
    p_large = 0.125;
    s_large_max = 500_000;
    get_ratio = 0.95;
    zipf_theta = 0.99;
    n_keys = 1_000_000;
    n_large_keys = 625;
    tiny_fraction = 0.4;
    key_size = 8;
  }

let paper_scale = { default with n_keys = 16_000_000; n_large_keys = 10_000 }

let write_intensive = { default with get_ratio = 0.5 }

let with_p_large t p = { t with p_large = p }

let with_s_large t s = { t with s_large_max = s }

let table1_profiles =
  [
    (0.125, 250_000);
    (0.125, 500_000);
    (0.125, 1_000_000);
    (0.0625, 500_000);
    (0.25, 500_000);
    (0.5, 500_000);
    (0.75, 500_000);
  ]

let mean_uniform lo hi = float_of_int (lo + hi) /. 2.0

let mean_small_item_bytes t =
  (t.tiny_fraction *. mean_uniform tiny_min tiny_max)
  +. ((1.0 -. t.tiny_fraction) *. mean_uniform small_min small_max)

let mean_large_item_bytes t = mean_uniform large_min t.s_large_max

let percent_data_large t =
  let pl = t.p_large /. 100.0 in
  let large = pl *. mean_large_item_bytes t in
  let small = (1.0 -. pl) *. mean_small_item_bytes t in
  100.0 *. large /. (large +. small)

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if t.p_large < 0.0 || t.p_large > 100.0 then err "p_large out of [0, 100]"
  else if t.s_large_max < large_min then
    err "s_large_max %d below the large-class minimum %d" t.s_large_max large_min
  else if t.get_ratio < 0.0 || t.get_ratio > 1.0 then err "get_ratio out of [0, 1]"
  else if t.zipf_theta < 0.0 || t.zipf_theta >= 1.0 then err "zipf_theta out of [0, 1)"
  else if t.n_large_keys < 0 || t.n_large_keys >= t.n_keys then
    err "need 0 <= n_large_keys < n_keys"
  else if t.tiny_fraction < 0.0 || t.tiny_fraction > 1.0 then
    err "tiny_fraction out of [0, 1]"
  else if t.key_size < 1 then err "key_size must be positive"
  else Ok ()

let pp fmt t =
  Format.fprintf fmt
    "{ p_large=%.4f%%; s_large=%dB; get_ratio=%.2f; zipf=%.2f; keys=%d (%d large) }"
    t.p_large t.s_large_max t.get_ratio t.zipf_theta t.n_keys t.n_large_keys
