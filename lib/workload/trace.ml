type t = {
  reqs : Generator.request array;
  ts_us : float array;
      (* per-request arrival timestamps; empty for an untimed trace *)
}

let of_requests reqs = { reqs; ts_us = [||] }

let of_timed reqs ts_us =
  if Array.length reqs <> Array.length ts_us then
    invalid_arg "Trace.of_timed: timestamp count mismatch";
  Array.iteri
    (fun i ts ->
      if not (ts >= 0.0) then invalid_arg "Trace.of_timed: negative timestamp";
      if i > 0 && ts < ts_us.(i - 1) then
        invalid_arg "Trace.of_timed: timestamps not monotone")
    ts_us;
  { reqs; ts_us }

let requests t = t.reqs
let timestamps t = t.ts_us
let length t = Array.length t.reqs
let timed t = Array.length t.ts_us > 0

let capture gen ~n =
  if n < 0 then invalid_arg "Trace.capture: negative count";
  of_requests (Array.init n (fun _ -> Generator.next gen))

(* Header: "MNTR" + ASCII version digit + '\n', then a little-endian
   int64 record count.
   v1 record (14 bytes): op(1) is_large(1) key_id(8) item_size(4).
   v2 record (26 bytes): op(1) is_large(1) key_id(8) item_size(4)
   scan_len(4) ts_us(8, IEEE double bits); a flags byte after the count
   says whether the timestamps are meaningful.
   [save] writes v1 whenever the trace is untimed and scan-free, so files
   produced before the v2 extension stay readable and new scan-free
   captures stay readable by older tools. *)
let magic_prefix = "MNTR"
let v1_record = 14
let v2_record = 26

let max_item_size = 1 lsl 30
(* Any size field above 1 GiB (or negative) is a corrupt record: the
   dataset's largest class tops out in the hundreds of KB. *)

let op_code = function Generator.Get -> 0 | Generator.Put -> 1 | Generator.Scan -> 2

let op_of_code = function
  | 0 -> Some Generator.Get
  | 1 -> Some Generator.Put
  | 2 -> Some Generator.Scan
  | _ -> None

let needs_v2 t =
  timed t
  || Array.exists (fun (r : Generator.request) -> r.Generator.scan_len > 0) t.reqs

let save path t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let v2 = needs_v2 t in
      output_string oc magic_prefix;
      output_char oc (if v2 then '2' else '1');
      output_char oc '\n';
      let count = Bytes.create 8 in
      Bytes.set_int64_le count 0 (Int64.of_int (length t));
      output_bytes oc count;
      if v2 then output_char oc (if timed t then '\001' else '\000');
      let rec_size = if v2 then v2_record else v1_record in
      let buf = Bytes.create rec_size in
      Array.iteri
        (fun i (r : Generator.request) ->
          Bytes.set_uint8 buf 0 (op_code r.Generator.op);
          Bytes.set_uint8 buf 1 (if r.Generator.is_large then 1 else 0);
          Bytes.set_int64_le buf 2 (Int64.of_int r.Generator.key_id);
          Bytes.set_int32_le buf 10 (Int32.of_int r.Generator.item_size);
          if v2 then begin
            Bytes.set_int32_le buf 14 (Int32.of_int r.Generator.scan_len);
            Bytes.set_int64_le buf 18
              (Int64.bits_of_float (if timed t then t.ts_us.(i) else 0.0))
          end;
          output_bytes oc buf)
        t.reqs)

let fail fmt = Printf.ksprintf failwith fmt

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let header = really_input_string ic 6 in
      if String.sub header 0 4 <> magic_prefix || header.[5] <> '\n' then
        fail "Trace.load: bad magic";
      let version =
        match header.[4] with
        | '1' -> 1
        | '2' -> 2
        | c ->
            (* Same contract as [Proto.Wire.Bad_version]: an explicit
               decode error, never a silent misparse. *)
            fail "Trace.load: unsupported trace version %c" c
      in
      let count_buf = Bytes.create 8 in
      really_input ic count_buf 0 8;
      let count64 = Bytes.get_int64_le count_buf 0 in
      if Int64.compare count64 0L < 0 || Int64.compare count64 (Int64.of_int max_int) > 0
      then fail "Trace.load: bad record count";
      let count = Int64.to_int count64 in
      let with_ts =
        if version = 1 then false
        else
          match input_char ic with
          | '\000' -> false
          | '\001' -> true
          | _ -> fail "Trace.load: bad flags byte"
      in
      let rec_size = if version = 1 then v1_record else v2_record in
      (* Explicit length checks up front: a short file is "truncated" and a
         long one has "trailing garbage" — never a silently shorter
         trace. *)
      let expected = pos_in ic + (count * rec_size) in
      if in_channel_length ic < expected then
        fail "Trace.load: truncated (%d records declared, file too short)" count;
      if in_channel_length ic > expected then
        fail "Trace.load: %d trailing bytes after the last record"
          (in_channel_length ic - expected);
      let buf = Bytes.create rec_size in
      let ts_us = if with_ts then Array.make count 0.0 else [||] in
      let reqs =
        Array.init count (fun i ->
            really_input ic buf 0 rec_size;
            let op =
              match op_of_code (Bytes.get_uint8 buf 0) with
              | Some op -> op
              | None -> fail "Trace.load: bad opcode"
            in
            let item_size32 = Bytes.get_int32_le buf 10 in
            let item_size = Int32.to_int item_size32 in
            if item_size < 0 || item_size > max_item_size then
              fail "Trace.load: item size field overflow (%ld)" item_size32;
            let scan_len =
              if version = 1 then 0
              else begin
                let sl = Int32.to_int (Bytes.get_int32_le buf 14) in
                if sl < 0 || sl > max_item_size then
                  fail "Trace.load: scan length field overflow";
                sl
              end
            in
            if with_ts then begin
              let ts = Int64.float_of_bits (Bytes.get_int64_le buf 18) in
              if Float.is_nan ts || ts < 0.0 then
                fail "Trace.load: bad timestamp in record %d" i;
              ts_us.(i) <- ts
            end;
            {
              Generator.op;
              is_large = Bytes.get_uint8 buf 1 = 1;
              key_id = Int64.to_int (Bytes.get_int64_le buf 2);
              item_size;
              scan_len;
            })
      in
      if with_ts then of_timed reqs ts_us else of_requests reqs)

let replayer ?(loop = false) t =
  let trace = t.reqs in
  let pos = ref 0 in
  fun () ->
    if Array.length trace = 0 then None
    else if !pos < Array.length trace then begin
      let r = trace.(!pos) in
      incr pos;
      Some r
    end
    else if loop then begin
      pos := 1;
      Some trace.(0)
    end
    else None

let timed_replayer ?(loop = false) t =
  if not (timed t) then invalid_arg "Trace.timed_replayer: untimed trace";
  let n = Array.length t.reqs in
  let pos = ref 0 in
  let base = ref 0.0 in
  (* On wrap-around the next lap is re-based one mean inter-arrival gap
     after the previous lap's last request, so a looped replay keeps its
     rate across the seam. *)
  let span =
    if n > 1 then
      (t.ts_us.(n - 1) -. t.ts_us.(0)) *. float_of_int n /. float_of_int (n - 1)
    else 1.0
  in
  fun () ->
    if n = 0 then None
    else begin
      if !pos >= n && loop then begin
        pos := 0;
        base := !base +. span
      end;
      if !pos >= n then None
      else begin
        let i = !pos in
        incr pos;
        Some (!base +. t.ts_us.(i) -. t.ts_us.(0), t.reqs.(i))
      end
    end

let size_percentile t q =
  if length t = 0 then invalid_arg "Trace.size_percentile: empty trace";
  let sizes =
    Array.map (fun (r : Generator.request) -> float_of_int r.Generator.item_size) t.reqs
  in
  Stats.Quantile.of_array sizes q

let percent_large t =
  if length t = 0 then invalid_arg "Trace.percent_large: empty trace";
  let larges =
    Array.fold_left
      (fun acc (r : Generator.request) ->
        if r.Generator.item_size >= Spec.large_min then acc + 1 else acc)
      0 t.reqs
  in
  100.0 *. float_of_int larges /. float_of_int (length t)

let mean_item_size t =
  if length t = 0 then invalid_arg "Trace.mean_item_size: empty trace";
  Array.fold_left
    (fun acc (r : Generator.request) -> acc +. float_of_int r.Generator.item_size)
    0.0 t.reqs
  /. float_of_int (length t)
