type t = Generator.request array

let capture gen ~n =
  if n < 0 then invalid_arg "Trace.capture: negative count";
  Array.init n (fun _ -> Generator.next gen)

let magic = "MNTR1\n"

(* Record layout: op(1) is_large(1) key_id(8) item_size(4), little endian. *)
let record_size = 14

let save path trace =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      let count = Bytes.create 8 in
      Bytes.set_int64_le count 0 (Int64.of_int (Array.length trace));
      output_bytes oc count;
      let buf = Bytes.create record_size in
      Array.iter
        (fun (r : Generator.request) ->
          Bytes.set_uint8 buf 0 (match r.Generator.op with Generator.Get -> 0 | Generator.Put -> 1);
          Bytes.set_uint8 buf 1 (if r.Generator.is_large then 1 else 0);
          Bytes.set_int64_le buf 2 (Int64.of_int r.Generator.key_id);
          Bytes.set_int32_le buf 10 (Int32.of_int r.Generator.item_size);
          output_bytes oc buf)
        trace)

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let header = really_input_string ic (String.length magic) in
      if header <> magic then failwith "Trace.load: bad magic";
      let count_buf = Bytes.create 8 in
      really_input ic count_buf 0 8;
      let count = Int64.to_int (Bytes.get_int64_le count_buf 0) in
      if count < 0 then failwith "Trace.load: bad count";
      let buf = Bytes.create record_size in
      Array.init count (fun _ ->
          really_input ic buf 0 record_size;
          let op =
            match Bytes.get_uint8 buf 0 with
            | 0 -> Generator.Get
            | 1 -> Generator.Put
            | _ -> failwith "Trace.load: bad opcode"
          in
          {
            Generator.op;
            is_large = Bytes.get_uint8 buf 1 = 1;
            key_id = Int64.to_int (Bytes.get_int64_le buf 2);
            item_size = Int32.to_int (Bytes.get_int32_le buf 10);
          }))

let replayer ?(loop = false) trace =
  let pos = ref 0 in
  fun () ->
    if Array.length trace = 0 then None
    else if !pos < Array.length trace then begin
      let r = trace.(!pos) in
      incr pos;
      Some r
    end
    else if loop then begin
      pos := 1;
      Some trace.(0)
    end
    else None

let size_percentile trace q =
  if Array.length trace = 0 then invalid_arg "Trace.size_percentile: empty trace";
  let sizes =
    Array.map (fun (r : Generator.request) -> float_of_int r.Generator.item_size) trace
  in
  Stats.Quantile.of_array sizes q

let percent_large trace =
  if Array.length trace = 0 then invalid_arg "Trace.percent_large: empty trace";
  let larges =
    Array.fold_left
      (fun acc (r : Generator.request) ->
        if r.Generator.item_size >= Spec.large_min then acc + 1 else acc)
      0 trace
  in
  100.0 *. float_of_int larges /. float_of_int (Array.length trace)

let mean_item_size trace =
  if Array.length trace = 0 then invalid_arg "Trace.mean_item_size: empty trace";
  Array.fold_left
    (fun acc (r : Generator.request) -> acc +. float_of_int r.Generator.item_size)
    0.0 trace
  /. float_of_int (Array.length trace)
