(** Request-trace capture, storage and offline analysis.

    §6.2: "if traces of the target workload are available for off-line
    analysis (as typical in production workloads), the threshold between
    large and small requests can be set statically."  This module provides
    that workflow: capture a request stream from a generator, persist it
    in a compact binary format, and derive the static threshold (the 99th
    percentile of item sizes) to feed into
    {!Kvserver.Config.static_threshold}. *)

type t = Generator.request array

val capture : Generator.t -> n:int -> t
(** Draw [n] requests from the generator. *)

val save : string -> t -> unit
(** Write the trace to a file (fixed-width little-endian records under a
    magic header).  Raises [Sys_error] on I/O failure. *)

val load : string -> t
(** Read a trace back.  Raises [Failure] on a malformed file. *)

val replayer : ?loop:bool -> t -> unit -> Generator.request option
(** [replayer trace] returns a pull function yielding the trace in order;
    [loop] (default false) restarts from the beginning instead of
    returning [None] at the end. *)

(** Offline analysis *)

val size_percentile : t -> float -> float
(** [size_percentile t 0.99]: the static threshold §6.2 describes. *)

val percent_large : t -> float
(** Fraction (in percent) of requests whose item exceeds the large-class
    boundary; a sanity check against the generating spec. *)

val mean_item_size : t -> float
