(** Request-trace capture, storage and offline analysis.

    §6.2: "if traces of the target workload are available for off-line
    analysis (as typical in production workloads), the threshold between
    large and small requests can be set statically."  This module provides
    that workflow: capture a request stream from a generator (optionally
    with per-request arrival timestamps, so bursts and diurnal ramps
    replay at their recorded pacing), persist it in a compact versioned
    binary format, and derive the static threshold (the 99th percentile of
    item sizes) to feed into {!Kvserver.Config.static_threshold}.

    On disk a trace is ["MNTR" version '\n'] followed by a record count
    and fixed-width little-endian records.  Version 1 is the original
    untimed GET/PUT format; version 2 adds the SCAN opcode, a scan-length
    field and IEEE-double timestamps.  {!save} writes the oldest version
    that can represent the trace; {!load} rejects unknown versions,
    truncated files, trailing bytes and overflowing size fields with an
    explicit [Failure] (the same contract as {!Proto.Wire} decode
    errors). *)

type t

val of_requests : Generator.request array -> t
(** An untimed trace. *)

val of_timed : Generator.request array -> float array -> t
(** A timed trace; timestamps are absolute microseconds, non-negative and
    monotone (validated). *)

val requests : t -> Generator.request array

val timestamps : t -> float array
(** Empty for an untimed trace. *)

val length : t -> int

val timed : t -> bool

val capture : Generator.t -> n:int -> t
(** Draw [n] requests from the generator (untimed — see
    {!Scenario.capture} for timed captures under an arrival process). *)

val save : string -> t -> unit
(** Write the trace to a file.  Raises [Sys_error] on I/O failure. *)

val load : string -> t
(** Read a trace back.  Raises [Failure] on a malformed file: bad magic,
    unsupported version, truncation, trailing garbage, bad opcode, or a
    size field that is negative or absurdly large. *)

val replayer : ?loop:bool -> t -> unit -> Generator.request option
(** [replayer trace] returns a pull function yielding the trace in order;
    [loop] (default false) restarts from the beginning instead of
    returning [None] at the end.  Ignores timestamps. *)

val timed_replayer :
  ?loop:bool -> t -> unit -> (float * Generator.request) option
(** Like {!replayer} but yields [(arrival_time_us, request)] pairs,
    re-based so the first request arrives at 0.  With [loop], each lap is
    re-based after the previous one (one mean inter-arrival gap after the
    last request), preserving the recorded rate across the seam.  Raises
    [Invalid_argument] on an untimed trace. *)

(** Offline analysis *)

val size_percentile : t -> float -> float
(** [size_percentile t 0.99]: the static threshold §6.2 describes. *)

val percent_large : t -> float
(** Fraction (in percent) of requests whose item exceeds the large-class
    boundary; a sanity check against the generating spec. *)

val mean_item_size : t -> float
