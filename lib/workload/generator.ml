type op = Get | Put | Scan

type request = {
  op : op;
  key_id : int;
  item_size : int;
  is_large : bool;
  scan_len : int;
}

type t = {
  dataset : Dataset.t;
  rng : Dsim.Rng.t;
  mutable p_large : float;
  get_ratio : float;
  scan_ratio : float;
  scan_len : int;
  (* Scratch fields filled by [next_into]: all immediate values, so the
     allocation-free path writes no boxes.  [next] wraps them back into a
     record for callers that want one. *)
  mutable last_op : op;
  mutable last_key_id : int;
  mutable last_item_size : int;
  mutable last_is_large : bool;
  mutable last_scan_len : int;
}

let create ?(seed = 11) ?p_large ?get_ratio ?(scan_ratio = 0.0) ?(scan_len = 16)
    dataset =
  if scan_ratio < 0.0 || scan_ratio >= 1.0 then
    invalid_arg "Generator.create: scan_ratio out of [0, 1)";
  if scan_len < 1 then invalid_arg "Generator.create: scan_len must be >= 1";
  let spec = Dataset.spec dataset in
  {
    dataset;
    rng = Dsim.Rng.create seed;
    p_large = Option.value p_large ~default:spec.Spec.p_large;
    get_ratio = Option.value get_ratio ~default:spec.Spec.get_ratio;
    scan_ratio;
    scan_len;
    last_op = Get;
    last_key_id = 0;
    last_item_size = 0;
    last_is_large = false;
    last_scan_len = 0;
  }

let dataset t = t.dataset

let p_large t = t.p_large

let set_p_large t p =
  if p < 0.0 || p > 100.0 then invalid_arg "Generator.set_p_large: out of [0, 100]";
  t.p_large <- p

(* Total stored bytes of the contiguous id range [i, stop).  Top-level
   recursion with an int accumulator: no closure, no allocation — this can
   run on the engine's per-arrival path. *)
let rec range_bytes d i stop acc =
  if i >= stop then acc else range_bytes d (i + 1) stop (acc + Dataset.size_of_key d i)

let scan_bytes dataset ~start ~len = range_bytes dataset start (start + len) 0

let next_into t =
  (* The scan draw happens only when scans are enabled, so a scan-free
     generator consumes exactly the draws it always did (golden runs are
     byte-identical). *)
  if t.scan_ratio > 0.0 && Dsim.Rng.unit_float t.rng < t.scan_ratio then begin
    (* SCAN: start at a popularity-weighted small key; keys are named so
       lexicographic order equals id order, so a scan covers a contiguous
       id range and its reply size is the sum of the stored sizes. *)
    let n_small = Dataset.n_small_keys t.dataset in
    let len = if t.scan_len > n_small then n_small else t.scan_len in
    let first = Dataset.sample_small_key t.dataset t.rng in
    let start = if first > n_small - len then n_small - len else first in
    let bytes = scan_bytes t.dataset ~start ~len in
    t.last_op <- Scan;
    t.last_key_id <- start;
    t.last_item_size <- bytes;
    t.last_is_large <- bytes >= Spec.large_min;
    t.last_scan_len <- len
  end
  else begin
    let large = Dsim.Rng.unit_float t.rng < t.p_large /. 100.0 in
    let key_id =
      if large then Dataset.sample_large_key t.dataset t.rng
      else Dataset.sample_small_key t.dataset t.rng
    in
    t.last_key_id <- key_id;
    t.last_is_large <- large;
    t.last_scan_len <- 0;
    if Dsim.Rng.unit_float t.rng < t.get_ratio then begin
      t.last_op <- Get;
      t.last_item_size <- Dataset.size_of_key t.dataset key_id
    end
    else begin
      let spec = Dataset.spec t.dataset in
      let new_size =
        if large then
          Dsim.Dist.uniform_int_in t.rng ~lo:Spec.large_min ~hi:spec.Spec.s_large_max
        else if Dataset.size_of_key t.dataset key_id <= Spec.tiny_max then
          Dsim.Dist.uniform_int_in t.rng ~lo:Spec.tiny_min ~hi:Spec.tiny_max
        else Dsim.Dist.uniform_int_in t.rng ~lo:Spec.small_min ~hi:Spec.small_max
      in
      t.last_op <- Put;
      t.last_item_size <- new_size
    end
  end

let last_op t = t.last_op
let last_key_id t = t.last_key_id
let last_item_size t = t.last_item_size
let last_is_large t = t.last_is_large
let last_scan_len t = t.last_scan_len

let next t =
  next_into t;
  {
    op = t.last_op;
    key_id = t.last_key_id;
    item_size = t.last_item_size;
    is_large = t.last_is_large;
    scan_len = t.last_scan_len;
  }

let request_wire_bytes r ~key_size =
  match r.op with
  | Get ->
      Netsim.Frame.wire_bytes_for_payload (Proto.Wire.get_request_size ~key_len:key_size)
  | Scan ->
      Netsim.Frame.wire_bytes_for_payload
        (Proto.Wire.scan_request_size ~key_len:key_size)
  | Put ->
      Netsim.Frame.wire_bytes_for_payload
        (Proto.Wire.put_request_size ~key_len:key_size ~value_len:r.item_size)
