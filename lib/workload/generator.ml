type op = Get | Put

type request = { op : op; key_id : int; item_size : int; is_large : bool }

type t = {
  dataset : Dataset.t;
  rng : Dsim.Rng.t;
  mutable p_large : float;
  get_ratio : float;
  (* Scratch fields filled by [next_into]: all immediate values, so the
     allocation-free path writes no boxes.  [next] wraps them back into a
     record for callers that want one. *)
  mutable last_op : op;
  mutable last_key_id : int;
  mutable last_item_size : int;
  mutable last_is_large : bool;
}

let create ?(seed = 11) ?p_large ?get_ratio dataset =
  let spec = Dataset.spec dataset in
  {
    dataset;
    rng = Dsim.Rng.create seed;
    p_large = Option.value p_large ~default:spec.Spec.p_large;
    get_ratio = Option.value get_ratio ~default:spec.Spec.get_ratio;
    last_op = Get;
    last_key_id = 0;
    last_item_size = 0;
    last_is_large = false;
  }

let dataset t = t.dataset

let p_large t = t.p_large

let set_p_large t p =
  if p < 0.0 || p > 100.0 then invalid_arg "Generator.set_p_large: out of [0, 100]";
  t.p_large <- p

let next_into t =
  let large = Dsim.Rng.unit_float t.rng < t.p_large /. 100.0 in
  let key_id =
    if large then Dataset.sample_large_key t.dataset t.rng
    else Dataset.sample_small_key t.dataset t.rng
  in
  t.last_key_id <- key_id;
  t.last_is_large <- large;
  if Dsim.Rng.unit_float t.rng < t.get_ratio then begin
    t.last_op <- Get;
    t.last_item_size <- Dataset.size_of_key t.dataset key_id
  end
  else begin
    let spec = Dataset.spec t.dataset in
    let new_size =
      if large then
        Dsim.Dist.uniform_int_in t.rng ~lo:Spec.large_min ~hi:spec.Spec.s_large_max
      else if Dataset.size_of_key t.dataset key_id <= Spec.tiny_max then
        Dsim.Dist.uniform_int_in t.rng ~lo:Spec.tiny_min ~hi:Spec.tiny_max
      else Dsim.Dist.uniform_int_in t.rng ~lo:Spec.small_min ~hi:Spec.small_max
    in
    t.last_op <- Put;
    t.last_item_size <- new_size
  end

let last_op t = t.last_op
let last_key_id t = t.last_key_id
let last_item_size t = t.last_item_size
let last_is_large t = t.last_is_large

let next t =
  next_into t;
  {
    op = t.last_op;
    key_id = t.last_key_id;
    item_size = t.last_item_size;
    is_large = t.last_is_large;
  }

let request_wire_bytes r ~key_size =
  match r.op with
  | Get ->
      Netsim.Frame.wire_bytes_for_payload (Proto.Wire.get_request_size ~key_len:key_size)
  | Put ->
      Netsim.Frame.wire_bytes_for_payload
        (Proto.Wire.put_request_size ~key_len:key_size ~value_len:r.item_size)
