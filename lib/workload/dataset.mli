(** A concrete dataset instance: one size per key.

    Keys are dense integers [0, n).  The first [n - n_large] ids are the
    tiny/small population (targets of the zipfian distribution); the rest
    are the large population (accessed uniformly, §5.3: "large items ...
    are chosen uniformly at random", which "avoids pathological cases in
    which the most accessed large item is the biggest or the smallest").

    Zipf ranks are scrambled onto small-key ids with a Feistel-style
    permutation so that popularity is independent of the id (and hence of
    the keyhash and of the size assignment). *)

type t

val create : ?seed:int -> Spec.t -> t

val spec : t -> Spec.t

val n_keys : t -> int

val n_small_keys : t -> int

val size_of_key : t -> int -> int
(** Item size in bytes for a key id. *)

val is_large_key : t -> int -> bool

val key_name : int -> string
(** Stable printable key for use with the real {!Kvstore.Store}
    (equivalent to [Printf.sprintf "k%08x" id], without the formatter). *)

val key_partition : t -> int -> int
(** The 30-bit {!Kvstore.Keyhash} partition index of the key's name hash,
    precomputed at dataset creation — the engine's PUT dispatch never
    formats or hashes key names on the per-request path. *)

val sample_small_key : t -> Dsim.Rng.t -> int
(** A zipf-distributed tiny/small key. *)

val sample_large_key : t -> Dsim.Rng.t -> int
(** A uniformly distributed large key. *)

val sample_get_key : t -> Dsim.Rng.t -> int
(** Pick a key for a GET: with probability [p_large/100] a uniform large
    key, otherwise a zipf-distributed small key. *)

val sample_put : t -> Dsim.Rng.t -> int * int
(** Pick a key and the new value size for a PUT.  The new size is drawn
    from the key's own class (tiny/small/large), modelling updates that
    keep an item's character without keeping its exact size. *)

val total_value_bytes : t -> int
(** Sum of all stored item sizes — the resident-set size of the fully
    populated dataset, which a memory budget is measured against. *)

val mean_item_bytes_per_request : t -> float
(** Expected item size per request under the spec's request mix. *)
