(** Request stream generator.

    Draws the operation (GET/PUT per the spec's ratio), the key and — for
    PUTs — the new item size.  The large-request probability can be changed
    at runtime, which is how the dynamic workload of §6.6 varies [p_l]
    while everything else stays fixed. *)

type op = Get | Put

type request = {
  op : op;
  key_id : int;
  item_size : int;
      (** For GET: the stored size of the item (what the server will
          discover at lookup).  For PUT: the size being written (carried in
          the request, §3). *)
  is_large : bool; (** ground truth w.r.t. the dataset class, for metrics *)
}

type t

val create : ?seed:int -> ?p_large:float -> ?get_ratio:float -> Dataset.t -> t
(** [p_large] and [get_ratio] default to the dataset's spec.  Overrides let
    one dataset (whose sizes do not depend on the mix) serve many request
    mixes. *)

val dataset : t -> Dataset.t

val p_large : t -> float
(** Current large-request percentage (initially the spec's). *)

val set_p_large : t -> float -> unit

val next : t -> request
(** Generate the next request. *)

val next_into : t -> unit
(** Allocation-free variant of {!next}: draws the next request (same RNG
    stream and draw order as {!next}) into internal scratch fields, read
    back via the [last_*] accessors below.  The scratch is overwritten by
    the following [next]/[next_into] call. *)

val last_op : t -> op

val last_key_id : t -> int

val last_item_size : t -> int

val last_is_large : t -> bool

val request_wire_bytes : request -> key_size:int -> int
(** Bytes the request occupies on the wire (the whole encoded request for
    a PUT, the small fixed-size request for a GET), including framing. *)
