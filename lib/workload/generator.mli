(** Request stream generator.

    Draws the operation (GET/PUT per the spec's ratio, plus optional
    ordered SCANs), the key and — for PUTs — the new item size.  The
    large-request probability can be changed at runtime, which is how the
    dynamic workload of §6.6 varies [p_l] while everything else stays
    fixed. *)

type op =
  | Get
  | Put
  | Scan  (** ordered range read over consecutive key ids *)

type request = {
  op : op;
  key_id : int;
      (** key for GET/PUT; first key of the range for SCAN *)
  item_size : int;
      (** For GET: the stored size of the item (what the server will
          discover at lookup).  For PUT: the size being written (carried in
          the request, §3).  For SCAN: the total stored bytes of the
          scanned range — the reply payload. *)
  is_large : bool; (** ground truth w.r.t. the dataset class, for metrics *)
  scan_len : int;  (** number of keys in a SCAN; 0 for GET/PUT *)
}

type t

val create :
  ?seed:int ->
  ?p_large:float ->
  ?get_ratio:float ->
  ?scan_ratio:float ->
  ?scan_len:int ->
  Dataset.t ->
  t
(** [p_large] and [get_ratio] default to the dataset's spec.  Overrides let
    one dataset (whose sizes do not depend on the mix) serve many request
    mixes.  [scan_ratio] (default 0) is the fraction of requests that are
    SCANs of [scan_len] keys (default 16); with [scan_ratio = 0] the RNG
    draw sequence is exactly the scan-free one, so existing runs stay
    byte-identical. *)

val dataset : t -> Dataset.t

val p_large : t -> float
(** Current large-request percentage (initially the spec's). *)

val set_p_large : t -> float -> unit

val scan_bytes : Dataset.t -> start:int -> len:int -> int
(** Total stored bytes of [len] consecutive keys from [start] — the reply
    size of a SCAN over that range (key names sort in id order). *)

val next : t -> request
(** Generate the next request. *)

val next_into : t -> unit
(** Allocation-free variant of {!next}: draws the next request (same RNG
    stream and draw order as {!next}) into internal scratch fields, read
    back via the [last_*] accessors below.  The scratch is overwritten by
    the following [next]/[next_into] call. *)

val last_op : t -> op

val last_key_id : t -> int

val last_item_size : t -> int

val last_is_large : t -> bool

val last_scan_len : t -> int

val request_wire_bytes : request -> key_size:int -> int
(** Bytes the request occupies on the wire (the whole encoded request for
    a PUT, the small fixed-size request for a GET/SCAN), including
    framing. *)
