(** Arrival processes: how offered load varies over a run.

    A scenario pairs a request mix with one of these processes.  The
    engine consumes the process either live — as a pacing function
    modulating its exponential inter-arrival draws — or offline, by
    sampling a timed trace from it ({!timestamps}, via Lewis–Shedler
    thinning) that replays byte-identically per seed. *)

type t =
  | Poisson  (** constant-rate memoryless arrivals (the paper's setup) *)
  | Diurnal of { period_us : float; amplitude : float }
      (** rate(t) = base × (1 + amplitude·sin(2πt/period)): a compressed
          day/night ramp.  [0 <= amplitude < 1]. *)
  | Bursts of { on_us : float; off_us : float; factor : float }
      (** square-wave modulation: [factor]× the base rate for [on_us],
          then the base rate for [off_us], repeating.  [factor = 0] makes
          an on/off source. *)

val validate : t -> (unit, string) result

val rate_at : t -> base:float -> float -> float
(** Instantaneous rate (Mops) at an absolute time, for a base rate.  Pure
    in the time argument. *)

val next_change : t -> base:float -> float -> float
(** Next time after the argument at which the rate regime changes
    (infinity for Poisson); used to park an engine whose current rate is
    zero. *)

val max_rate : t -> base:float -> float
(** Upper envelope of {!rate_at} — the thinning envelope. *)

val timestamps : t -> base:float -> n:int -> seed:int -> float array
(** [n] arrival times (µs, ascending from ~0) drawn from the process by
    thinning; deterministic per [seed]. *)

val pp : Format.formatter -> t -> unit
