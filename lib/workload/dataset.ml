type t = {
  spec : Spec.t;
  n : int;
  small_sizes : Bytes.t;
      (* 16-bit little-endian entry per small key.  Small sizes are
         bounded by [Spec.small_max] (1400), so 2 bytes suffice: the
         packed table is 4x smaller than an [int array], and the random
         zipf-driven [size_of_key] on the GET path mostly hits cache
         instead of DRAM. *)
  large_sizes : int array; (* one entry per large key; up to s_large_max *)
  zipf : Dsim.Dist.Zipf.t;
  n_small : int;
  perm_key : int; (* parameter of the rank -> key-id scrambling *)
  part30 : int array; (* per-key 30-bit keyhash partition, precomputed *)
}

(* Multiplicative scrambling of zipf ranks onto key ids: an affine map with
   a multiplier coprime to n distributes the popular ranks across the whole
   id space while remaining a bijection. *)
let scramble ~n ~mult rank = (rank * mult + 0x9E37) mod n

let rec coprime_mult n candidate =
  let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
  if gcd candidate n = 1 then candidate else coprime_mult n (candidate + 2)

(* Hand-rolled ["k%08x"]: producing the same strings as [Printf.sprintf]
   without interpreting a format per key makes the whole-dataset hash
   precomputation (and real-store key materialization) cheap. *)
let hex_digits = "0123456789abcdef"

let key_name id =
  let b = Bytes.create 9 in
  Bytes.unsafe_set b 0 'k';
  let v = ref id in
  for i = 8 downto 1 do
    Bytes.unsafe_set b i (String.unsafe_get hex_digits (!v land 0xF));
    v := !v lsr 4
  done;
  Bytes.unsafe_to_string b

let create ?(seed = 7) spec =
  (match Spec.validate spec with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Dataset.create: " ^ msg));
  let rng = Dsim.Rng.create seed in
  let n = spec.Spec.n_keys in
  let n_large = spec.Spec.n_large_keys in
  let n_small = n - n_large in
  assert (Spec.small_max < 0x10000);
  let small_sizes = Bytes.create (2 * n_small) in
  for i = 0 to n_small - 1 do
    let size =
      if Dsim.Rng.unit_float rng < spec.Spec.tiny_fraction then
        Dsim.Dist.uniform_int_in rng ~lo:Spec.tiny_min ~hi:Spec.tiny_max
      else Dsim.Dist.uniform_int_in rng ~lo:Spec.small_min ~hi:Spec.small_max
    in
    Bytes.set_uint16_le small_sizes (2 * i) size
  done;
  let large_sizes =
    Array.init (n - n_small) (fun _ ->
        Dsim.Dist.uniform_int_in rng ~lo:Spec.large_min ~hi:spec.Spec.s_large_max)
  in
  {
    spec;
    n;
    small_sizes;
    large_sizes;
    zipf = Dsim.Dist.Zipf.create ~n:n_small ~theta:spec.Spec.zipf_theta;
    n_small;
    perm_key = coprime_mult n_small 2_654_435_761;
    part30 =
      Array.init n (fun id ->
          Kvstore.Keyhash.partition_of (Kvstore.Keyhash.hash (key_name id)) ~bits:30);
  }

let spec t = t.spec

let n_keys t = t.n

let n_small_keys t = t.n_small

let[@inline] size_of_key t id =
  if id < t.n_small then Bytes.get_uint16_le t.small_sizes (2 * id)
  else t.large_sizes.(id - t.n_small)

let[@inline] is_large_key t id = id >= t.n_small

let[@inline] key_partition t id = t.part30.(id)

let sample_small_key t rng =
  let rank = Dsim.Dist.Zipf.sample t.zipf rng in
  scramble ~n:t.n_small ~mult:t.perm_key rank

let sample_large_key t rng =
  t.n_small + Dsim.Rng.int rng (Array.length t.large_sizes)

let sample_get_key t rng =
  if Dsim.Rng.unit_float rng < t.spec.Spec.p_large /. 100.0 then sample_large_key t rng
  else sample_small_key t rng

let sample_put t rng =
  let key = sample_get_key t rng in
  let new_size =
    if is_large_key t key then
      Dsim.Dist.uniform_int_in rng ~lo:Spec.large_min ~hi:t.spec.Spec.s_large_max
    else if size_of_key t key <= Spec.tiny_max then
      Dsim.Dist.uniform_int_in rng ~lo:Spec.tiny_min ~hi:Spec.tiny_max
    else Dsim.Dist.uniform_int_in rng ~lo:Spec.small_min ~hi:Spec.small_max
  in
  (key, new_size)

let total_value_bytes t =
  let acc = ref 0 in
  for id = 0 to t.n - 1 do
    acc := !acc + size_of_key t id
  done;
  !acc

let mean_item_bytes_per_request t =
  let pl = t.spec.Spec.p_large /. 100.0 in
  (pl *. Spec.mean_large_item_bytes t.spec)
  +. ((1.0 -. pl) *. Spec.mean_small_item_bytes t.spec)
