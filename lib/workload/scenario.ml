type t = {
  label : string;
  spec : Spec.t;
  arrival : Arrival.t;
  ttl_us : float option;
  sweep_us : float option;
  scan_ratio : float;
  scan_len : int;
  mem_fraction : float option;
  replay : bool;
}

let of_spec ?(label = "custom") spec =
  {
    label;
    spec;
    arrival = Arrival.Poisson;
    ttl_us = None;
    sweep_us = None;
    scan_ratio = 0.0;
    scan_len = 16;
    mem_fraction = None;
    replay = false;
  }

let default = of_spec ~label:"default" Spec.default

let validate t =
  match Spec.validate t.spec with
  | Error _ as e -> e
  | Ok () -> (
      match Arrival.validate t.arrival with
      | Error _ as e -> e
      | Ok () ->
          if t.scan_ratio < 0.0 || t.scan_ratio >= 1.0 then
            Error "scan_ratio out of [0, 1)"
          else if t.scan_len < 1 then Error "scan_len must be >= 1"
          else if (match t.ttl_us with Some x -> not (x > 0.0) | None -> false) then
            Error "ttl_us must be positive"
          else if (match t.sweep_us with Some x -> not (x > 0.0) | None -> false)
          then Error "sweep_us must be positive"
          else if
            match t.mem_fraction with
            | Some f -> not (f > 0.0) || f > 1.0
            | None -> false
          then Error "mem_fraction out of (0, 1]"
          else Ok ())

let plain t =
  (match t.arrival with Arrival.Poisson -> true | _ -> false)
  && t.ttl_us = None && t.scan_ratio = 0.0 && t.mem_fraction = None && not t.replay

let generator ?(seed = 11) t dataset =
  Generator.create ~seed ~p_large:t.spec.Spec.p_large ~get_ratio:t.spec.Spec.get_ratio
    ~scan_ratio:t.scan_ratio ~scan_len:t.scan_len dataset

let capture ?(seed = 11) t dataset ~rate_mops ~n =
  let gen = generator ~seed:(seed + 101) t dataset in
  let ts = Arrival.timestamps t.arrival ~base:rate_mops ~n ~seed in
  let reqs = Array.init n (fun _ -> Generator.next gen) in
  Trace.of_timed reqs ts

(* ---------------- registry ---------------- *)

type info = {
  name : string;
  aliases : string list;
  summary : string;
  knobs : (string * string) list;
  base : t;
}

(* Knobs shared by every scenario; entries may document extras but the
   parser below accepts this whole set uniformly. *)
let common_knobs =
  [
    ("load", "ignored here; kept for CLI symmetry");
    ("p_large", "percentage of large requests (0..100)");
    ("s_large", "max large item size, bytes");
    ("get_ratio", "fraction of GETs (0..1)");
    ("n_keys", "dataset keys");
    ("ttl_ms", "PUT time-to-live, ms (0 disables)");
    ("sweep_ms", "background expiry-sweep period, ms (0 = lazy only)");
    ("scan_ratio", "fraction of requests that are SCANs (0..1)");
    ("scan_len", "keys per SCAN");
    ("mem_fraction", "memory budget / dataset bytes (0..1]; <1 forces eviction");
    ("amplitude", "diurnal amplitude (0..1)");
    ("period_ms", "diurnal period, ms");
    ("on_ms", "burst on-window, ms");
    ("off_ms", "burst off-window, ms");
    ("factor", "burst rate multiplier");
    ("replay", "run via a captured timed trace (true/false)");
  ]

let registry : info list ref = ref []

let spellings (i : info) =
  String.lowercase_ascii i.name :: List.map String.lowercase_ascii i.aliases

let register i =
  let taken = List.concat_map spellings !registry in
  List.iter
    (fun s ->
      if List.exists (String.equal s) taken then
        invalid_arg ("Scenario.register: name or alias already taken: " ^ s))
    (spellings i);
  (match validate i.base with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Scenario.register: " ^ i.name ^ ": " ^ msg));
  registry := !registry @ [ i ]

let all () = !registry

let find s =
  let s = String.lowercase_ascii s in
  List.find_opt (fun i -> List.exists (String.equal s) (spellings i)) !registry

(* ---------------- knob application ---------------- *)

let float_knob v =
  match float_of_string_opt v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "not a number: %S" v)

let int_knob v =
  match int_of_string_opt v with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "not an integer: %S" v)

let bool_knob v =
  match String.lowercase_ascii v with
  | "true" | "1" | "yes" -> Ok true
  | "false" | "0" | "no" -> Ok false
  | _ -> Error (Printf.sprintf "not a boolean: %S" v)

let ms_to_us x = x *. 1000.0

let opt_of_pos x = if x > 0.0 then Some x else None

let apply_knob t (k, v) =
  let ( let* ) = Result.bind in
  match String.lowercase_ascii k with
  | "load" -> Ok t (* consumed by the CLI, inert here *)
  | "p_large" ->
      let* f = float_knob v in
      Ok { t with spec = { t.spec with Spec.p_large = f } }
  | "s_large" ->
      let* i = int_knob v in
      Ok { t with spec = { t.spec with Spec.s_large_max = i } }
  | "get_ratio" ->
      let* f = float_knob v in
      Ok { t with spec = { t.spec with Spec.get_ratio = f } }
  | "n_keys" ->
      let* i = int_knob v in
      (* Scale the large population with the dataset, as the builtins do. *)
      let n_large = max 1 (i * t.spec.Spec.n_large_keys / max 1 t.spec.Spec.n_keys) in
      Ok { t with spec = { t.spec with Spec.n_keys = i; n_large_keys = n_large } }
  | "ttl_ms" ->
      let* f = float_knob v in
      Ok { t with ttl_us = opt_of_pos (ms_to_us f) }
  | "sweep_ms" ->
      let* f = float_knob v in
      Ok { t with sweep_us = opt_of_pos (ms_to_us f) }
  | "scan_ratio" ->
      let* f = float_knob v in
      Ok { t with scan_ratio = f }
  | "scan_len" ->
      let* i = int_knob v in
      Ok { t with scan_len = i }
  | "mem_fraction" ->
      let* f = float_knob v in
      Ok { t with mem_fraction = (if f >= 1.0 then None else opt_of_pos f) }
  | "amplitude" -> (
      let* f = float_knob v in
      match t.arrival with
      | Arrival.Diurnal d -> Ok { t with arrival = Arrival.Diurnal { d with amplitude = f } }
      | Arrival.Poisson | Arrival.Bursts _ ->
          Error "amplitude only applies to a diurnal scenario")
  | "period_ms" -> (
      let* f = float_knob v in
      match t.arrival with
      | Arrival.Diurnal d ->
          Ok { t with arrival = Arrival.Diurnal { d with period_us = ms_to_us f } }
      | Arrival.Poisson | Arrival.Bursts _ ->
          Error "period_ms only applies to a diurnal scenario")
  | "on_ms" -> (
      let* f = float_knob v in
      match t.arrival with
      | Arrival.Bursts b -> Ok { t with arrival = Arrival.Bursts { b with on_us = ms_to_us f } }
      | Arrival.Poisson | Arrival.Diurnal _ ->
          Error "on_ms only applies to a bursty scenario")
  | "off_ms" -> (
      let* f = float_knob v in
      match t.arrival with
      | Arrival.Bursts b ->
          Ok { t with arrival = Arrival.Bursts { b with off_us = ms_to_us f } }
      | Arrival.Poisson | Arrival.Diurnal _ ->
          Error "off_ms only applies to a bursty scenario")
  | "factor" -> (
      let* f = float_knob v in
      match t.arrival with
      | Arrival.Bursts b -> Ok { t with arrival = Arrival.Bursts { b with factor = f } }
      | Arrival.Poisson | Arrival.Diurnal _ ->
          Error "factor only applies to a bursty scenario")
  | "replay" ->
      let* b = bool_knob v in
      Ok { t with replay = b }
  | k -> Error (Printf.sprintf "unknown knob %S" k)

let make info overrides =
  let rec go t = function
    | [] -> ( match validate t with Ok () -> Ok t | Error msg -> Error msg)
    | kv :: rest -> ( match apply_knob t kv with Ok t -> go t rest | Error _ as e -> e)
  in
  go info.base overrides

let parse s =
  match String.split_on_char ',' (String.trim s) with
  | [] | [ "" ] -> Error "empty workload name"
  | name :: rest -> (
      match find name with
      | None -> Error (Printf.sprintf "unknown workload %S (try `minos workloads`)" name)
      | Some info -> (
          let kvs =
            List.filter_map
              (fun part ->
                let part = String.trim part in
                if part = "" then None
                else
                  match String.index_opt part '=' with
                  | None -> Some (part, "")
                  | Some i ->
                      Some
                        ( String.sub part 0 i,
                          String.sub part (i + 1) (String.length part - i - 1) ))
              rest
          in
          match make info kvs with
          | Ok t -> Ok t
          | Error msg -> Error (name ^ ": " ^ msg)))

(* ---------------- builtins ---------------- *)

(* The scenario-specific entries use a 200k-key dataset (large population
   scaled in proportion) so suite runs and CI smokes stay cheap; the
   paper-facing entries keep the exact specs the goldens were produced
   with. *)
let scenario_spec = { Spec.default with Spec.n_keys = 200_000; n_large_keys = 125 }

let builtin name ?(aliases = []) ~summary ?(knobs = []) base =
  { name; aliases; summary; knobs; base = { base with label = name } }

let () =
  List.iter register
    [
      builtin "default" ~aliases:[ "paper-default" ]
        ~summary:"the paper's synthetic bimodal mix (95:5 GET:PUT, zipf 0.99)"
        (of_spec Spec.default);
      builtin "paper" ~aliases:[ "paper-scale" ]
        ~summary:"full 16M-key dataset (10k large keys)"
        (of_spec Spec.paper_scale);
      builtin "write-intensive"
        ~aliases:[ "write_intensive"; "write" ]
        ~summary:"50:50 GET:PUT mix (paper §6.2)"
        (of_spec Spec.write_intensive);
      builtin "diurnal"
        ~summary:"sinusoidal day/night load ramp over the default mix"
        ~knobs:[ ("amplitude", "rate swing (0..1)"); ("period_ms", "cycle length") ]
        {
          (of_spec scenario_spec) with
          arrival = Arrival.Diurnal { period_us = 100_000.0; amplitude = 0.6 };
        };
      builtin "bursts"
        ~summary:"square-wave bursts: 4x the base rate, 5 ms on / 20 ms off"
        ~knobs:
          [
            ("on_ms", "burst window"); ("off_ms", "quiet window");
            ("factor", "burst multiplier");
          ]
        {
          (of_spec scenario_spec) with
          arrival = Arrival.Bursts { on_us = 5_000.0; off_us = 20_000.0; factor = 4.0 };
        };
      builtin "ttl-churn" ~aliases:[ "ttl" ]
        ~summary:"write-heavy mix where every PUT carries a 50 ms TTL"
        ~knobs:[ ("ttl_ms", "time-to-live"); ("sweep_ms", "background sweep period") ]
        {
          (of_spec { scenario_spec with Spec.get_ratio = 0.7 }) with
          ttl_us = Some 50_000.0;
          sweep_us = Some 5_000.0;
        };
      builtin "scan-heavy" ~aliases:[ "scans"; "scan" ]
        ~summary:"2% ordered 32-key SCANs — large-ish by construction"
        ~knobs:[ ("scan_ratio", "SCAN fraction"); ("scan_len", "keys per SCAN") ]
        { (of_spec scenario_spec) with scan_ratio = 0.02; scan_len = 32 };
      builtin "cold-tier" ~aliases:[ "larger-than-memory"; "ltm" ]
        ~summary:
          "larger-than-memory: 50% memory budget + TTL churn under a replayed \
           diurnal trace"
        ~knobs:
          [
            ("mem_fraction", "budget / dataset bytes");
            ("ttl_ms", "time-to-live");
            ("replay", "capture + replay a timed trace");
          ]
        {
          (of_spec { scenario_spec with Spec.get_ratio = 0.9 }) with
          arrival = Arrival.Diurnal { period_us = 100_000.0; amplitude = 0.5 };
          ttl_us = Some 150_000.0;
          sweep_us = Some 10_000.0;
          mem_fraction = Some 0.5;
          replay = true;
        };
    ]

let pp fmt t =
  Format.fprintf fmt "%s: %a arrival=%a" t.label Spec.pp t.spec Arrival.pp t.arrival;
  (match t.ttl_us with
  | Some x -> Format.fprintf fmt " ttl=%.0fus" x
  | None -> ());
  (match t.sweep_us with
  | Some x -> Format.fprintf fmt " sweep=%.0fus" x
  | None -> ());
  if t.scan_ratio > 0.0 then
    Format.fprintf fmt " scans=%.1f%%x%d" (100.0 *. t.scan_ratio) t.scan_len;
  (match t.mem_fraction with
  | Some f -> Format.fprintf fmt " mem=%.0f%%" (100.0 *. f)
  | None -> ());
  if t.replay then Format.fprintf fmt " (trace replay)"
