(** Workload specifications (§5.3 of the paper).

    A workload is characterized by the item-size variability profile
    (percentage [p_l] of requests that target large items and maximum large
    item size [s_l]), the GET:PUT mix, the key-popularity skew, and the
    dataset shape. *)

type t = {
  p_large : float;       (** percentage (0..100) of requests for large items *)
  s_large_max : int;     (** maximum size of a large item, bytes *)
  get_ratio : float;     (** fraction of GETs, e.g. 0.95 *)
  zipf_theta : float;    (** skew of the tiny+small popularity distribution *)
  n_keys : int;          (** total keys in the dataset *)
  n_large_keys : int;    (** of which large *)
  tiny_fraction : float; (** fraction of the non-large keys that are tiny *)
  key_size : int;        (** constant key size, bytes *)
}

val default : t
(** The paper's default: skewed (zipf 0.99), 95:5 GET:PUT,
    [p_large = 0.125 %], [s_large_max = 500 KB], 40 % tiny / 60 % small.
    The dataset is scaled to 1 M keys (vs the paper's 16 M) with the large
    key count scaled in proportion (625), preserving per-key access
    probabilities; see DESIGN.md. *)

val paper_scale : t
(** The paper's full 16 M-key dataset with 10 K large keys. *)

val write_intensive : t
(** 50:50 GET:PUT (§6.2). *)

val with_p_large : t -> float -> t

val with_s_large : t -> int -> t

val tiny_min : int
val tiny_max : int
(** Tiny items: 1–13 bytes. *)

val small_min : int
val small_max : int
(** Small items: 14–1400 bytes. *)

val large_min : int
(** Large items: 1500 bytes up to [s_large_max]. *)

val table1_profiles : (float * int) list
(** The (p_l, s_l) combinations of Table 1. *)

val mean_small_item_bytes : t -> float
(** Expected size of a non-large item (mix of tiny and small). *)

val mean_large_item_bytes : t -> float

val percent_data_large : t -> float
(** Percentage of transferred bytes due to large requests — the third
    column of Table 1. *)

val validate : t -> (unit, string) result
(** Check internal consistency (fractions in range, sizes ordered,
    [n_large_keys < n_keys], ...). *)

val pp : Format.formatter -> t -> unit
