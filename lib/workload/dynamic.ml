type phase = { duration_us : float; p_large : float }

type t = { phases : phase array }

let create phases =
  if phases = [] then invalid_arg "Dynamic.create: need at least one phase";
  List.iter
    (fun p ->
      if not (p.duration_us > 0.0) then
        invalid_arg "Dynamic.create: phase durations must be positive")
    phases;
  { phases = Array.of_list phases }

let seconds s = s *. 1_000_000.0

let paper_schedule =
  create
    (List.map
       (fun p -> { duration_us = seconds 20.0; p_large = p })
       [ 0.125; 0.25; 0.5; 0.75; 0.5; 0.25; 0.125 ])

let total_duration t =
  Array.fold_left (fun acc p -> acc +. p.duration_us) 0.0 t.phases

let p_large_at t time =
  let n = Array.length t.phases in
  let rec go i acc =
    if i >= n then t.phases.(n - 1).p_large
    else begin
      let acc' = acc +. t.phases.(i).duration_us in
      if time < acc' then t.phases.(i).p_large else go (i + 1) acc'
    end
  in
  go 0 0.0

let phase_boundaries t =
  let acc = ref 0.0 in
  Array.to_list t.phases
  |> List.map (fun p ->
         let s = !acc in
         acc := !acc +. p.duration_us;
         s)
