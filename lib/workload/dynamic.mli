(** Time-varying workload schedules (§6.6).

    A schedule is a sequence of phases, each holding a value of [p_large]
    for a fixed duration.  The paper's dynamic experiment steps p_l through
    0.125 → 0.25 → 0.5 → 0.75 → 0.5 → 0.25 → 0.125, twenty seconds per
    phase, at a fixed 2.25 Mops arrival rate. *)

type phase = { duration_us : float; p_large : float }

type t

val create : phase list -> t
(** At least one phase; durations must be positive. *)

val paper_schedule : t
(** The §6.6 schedule (7 × 20 s phases). *)

val total_duration : t -> float

val p_large_at : t -> float -> float
(** The p_l in effect at an absolute simulation time.  Times past the end
    hold the last phase's value. *)

val phase_boundaries : t -> float list
(** Start times of each phase, for plotting. *)
