(** Unbounded FIFO with occupancy statistics.

    The simulator's model of an RX queue or software queue: ordering and
    occupancy are what matter for queueing behaviour; the real lock-free
    counterpart is {!Ring}.  Tracks total enqueues and the high-water mark
    so experiments can report queue depths. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option

val peek : 'a t -> 'a option

val length : 'a t -> int

val is_empty : 'a t -> bool

val total_enqueued : 'a t -> int

val max_occupancy : 'a t -> int

val clear : 'a t -> unit
