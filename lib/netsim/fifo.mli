(** Unbounded FIFO with occupancy statistics.

    The simulator's model of an RX queue or software queue: ordering and
    occupancy are what matter for queueing behaviour; the real lock-free
    counterpart is {!Ring}.  Tracks total enqueues and the high-water mark
    so experiments can report queue depths.

    Implemented as a growable circular buffer over a flat array:
    steady-state {!push}/{!pop_exn} allocate nothing.  [dummy] fills
    vacated slots so popped values are not retained by the queue. *)

type 'a t

val create : dummy:'a -> unit -> 'a t

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Allocates the [Some]; prefer {!is_empty} + {!pop_exn} on hot paths. *)

val pop_exn : 'a t -> 'a
(** Raises [Invalid_argument] if empty. *)

val peek : 'a t -> 'a option

val peek_exn : 'a t -> 'a
(** Raises [Invalid_argument] if empty. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val total_enqueued : 'a t -> int
(** Cumulative pushes since creation; not reset by {!clear}. *)

val max_occupancy : 'a t -> int
(** High-water mark of {!length}; not reset by {!clear}. *)

val clear : 'a t -> unit
