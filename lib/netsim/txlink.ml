type t = {
  gbps : float;
  us_per_byte : float;
  mutable busy_until : float;
  mutable busy_accum : float; (* µs spent transmitting since last reset *)
  mutable total_bytes : int;
}

let create ~gbps =
  if not (gbps > 0.0) then invalid_arg "Txlink.create: rate must be > 0";
  (* bytes -> µs: 8 bits / (gbps * 1e9 bits/s) = 8e-3 / gbps µs per byte. *)
  { gbps; us_per_byte = 8.0e-3 /. gbps; busy_until = 0.0; busy_accum = 0.0; total_bytes = 0 }

let gbps t = t.gbps

let transmit t ~now ~bytes =
  if bytes < 0 then invalid_arg "Txlink.transmit: negative size";
  let start = Float.max now t.busy_until in
  let duration = float_of_int bytes *. t.us_per_byte in
  t.busy_until <- start +. duration;
  t.busy_accum <- t.busy_accum +. duration;
  t.total_bytes <- t.total_bytes + bytes;
  t.busy_until

let busy_until t = t.busy_until

let total_bytes t = t.total_bytes

let utilization t ~elapsed =
  if not (elapsed > 0.0) then invalid_arg "Txlink.utilization: elapsed must be > 0";
  Float.min 1.0 (t.busy_accum /. elapsed)

let reset_counters t =
  t.busy_accum <- 0.0;
  t.total_bytes <- 0
