type 'a t = { q : 'a Queue.t; mutable total : int; mutable high_water : int }

let create () = { q = Queue.create (); total = 0; high_water = 0 }

let push t v =
  Queue.add v t.q;
  t.total <- t.total + 1;
  let n = Queue.length t.q in
  if n > t.high_water then t.high_water <- n

let pop t = Queue.take_opt t.q

let peek t = Queue.peek_opt t.q

let length t = Queue.length t.q

let is_empty t = Queue.is_empty t.q

let total_enqueued t = t.total

let max_occupancy t = t.high_water

let clear t = Queue.clear t.q
