(* Growable circular buffer.  Steady-state push/pop_exn touch only the
   backing array and a few int fields — no per-element cell (Stdlib.Queue)
   or option box.  Vacated slots are overwritten with [dummy] so popped
   values do not linger reachable from the buffer (same discipline as
   Dsim.Heap). *)

type 'a t = {
  mutable buf : 'a array; (* capacity is always a power of two *)
  mutable head : int; (* index of the front element *)
  mutable len : int;
  dummy : 'a;
  mutable total : int;
  mutable high_water : int;
}

let create ~dummy () =
  { buf = Array.make 16 dummy; head = 0; len = 0; dummy; total = 0; high_water = 0 }

let[@cold] grow t =
  let cap = Array.length t.buf in
  let nbuf = Array.make (2 * cap) t.dummy in
  let tail_len = cap - t.head in
  Array.blit t.buf t.head nbuf 0 tail_len;
  Array.blit t.buf 0 nbuf tail_len t.head;
  t.buf <- nbuf;
  t.head <- 0

let[@inline] push t v =
  if t.len = Array.length t.buf then grow t;
  t.buf.((t.head + t.len) land (Array.length t.buf - 1)) <- v;
  t.len <- t.len + 1;
  t.total <- t.total + 1;
  if t.len > t.high_water then t.high_water <- t.len

let[@inline never] empty_pop () = invalid_arg "Fifo.pop_exn: empty"

let[@inline] pop_exn t =
  if t.len = 0 then empty_pop ();
  let v = t.buf.(t.head) in
  t.buf.(t.head) <- t.dummy;
  t.head <- (t.head + 1) land (Array.length t.buf - 1);
  t.len <- t.len - 1;
  v

let pop t = if t.len = 0 then None else Some (pop_exn t)

let peek_exn t =
  if t.len = 0 then invalid_arg "Fifo.peek_exn: empty";
  t.buf.(t.head)

let peek t = if t.len = 0 then None else Some t.buf.(t.head)

let[@inline] length t = t.len

let[@inline] is_empty t = t.len = 0

let total_enqueued t = t.total

let max_occupancy t = t.high_water

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) t.dummy;
  t.head <- 0;
  t.len <- 0
