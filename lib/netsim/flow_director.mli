(** Flow-Director-style exact-match RX dispatch.

    §4.1/§5.1: RSS forces the paper's clients to probe source ports until
    the Toeplitz hash lands on the intended queue; NICs with Flow Director
    support can instead be programmed with exact-match rules — e.g. "UDP
    destination port P → queue Q" — so the client simply names the queue
    in the destination port.

    This models the relevant slice of Intel's Flow Director: a bounded
    table of exact-match rules consulted before RSS, with RSS as the
    fallback for unmatched packets. *)

type t

type flow = { dst_port : int; src_port : int option }
(** A match on the UDP destination port, optionally narrowed by source
    port.  More specific rules win. *)

val create : ?capacity:int -> queues:int -> unit -> t
(** [capacity] bounds the rule table (hardware tables are small; default
    8192 perfect-match filters). *)

val add_rule : t -> flow -> queue:int -> (unit, [ `Table_full | `Bad_queue ]) result

val remove_rule : t -> flow -> bool

val rule_count : t -> int

val dispatch :
  t -> src_ip:int32 -> dst_ip:int32 -> src_port:int -> dst_port:int -> int
(** The RX queue for a packet: the most specific matching rule, or the
    RSS (Toeplitz) fallback. *)

val program_identity : t -> base_port:int -> unit
(** The configuration Minos would install (§4.1): destination port
    [base_port + q] → queue [q], for every queue. *)
