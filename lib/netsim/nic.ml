type queue_stats = { mutable frames : int; mutable wire_bytes : int }

type 'a t = {
  rx_queues : 'a Fifo.t array;
  stats : queue_stats array;
  tx : Txlink.t;
}

let create ~queues ~tx_gbps ~dummy =
  if queues <= 0 then invalid_arg "Nic.create: need at least one queue";
  {
    rx_queues = Array.init queues (fun _ -> Fifo.create ~dummy ());
    stats = Array.init queues (fun _ -> { frames = 0; wire_bytes = 0 });
    tx = Txlink.create ~gbps:tx_gbps;
  }

let queues t = Array.length t.rx_queues

let rx t i = t.rx_queues.(i)

let tx t = t.tx

let deliver t ~queue ~wire_bytes ~frames v =
  let s = t.stats.(queue) in
  s.frames <- s.frames + frames;
  s.wire_bytes <- s.wire_bytes + wire_bytes;
  Fifo.push t.rx_queues.(queue) v

let rx_stats t i = t.stats.(i)

let total_rx_wire_bytes t =
  Array.fold_left (fun acc s -> acc + s.wire_bytes) 0 t.stats
