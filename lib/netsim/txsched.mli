(** Frame-level round-robin transmit scheduler.

    A multi-queue NIC does not serialize whole messages FIFO: the DMA
    engine services the per-core TX queues round-robin at {e frame}
    granularity.  A small reply therefore waits at most one frame time per
    active queue — it is never stuck behind all 340 frames of a 500 KB
    reply on another queue — while large replies stretch in proportion to
    concurrent traffic.  This is essential to reproduce the paper's
    low-load tail latencies: with FIFO-by-message a 40 Gbit wire alone
    would add a ~50 µs tail at any load.

    The scheduler is driven by the simulator through the [schedule]
    closure supplied at creation; one event per frame is processed only
    while the wire is busy. *)

type t

val create :
  gbps:float ->
  queues:int ->
  schedule:(float -> (unit -> unit) -> unit) ->
  now:(unit -> float) ->
  t
(** [schedule delay f] must run [f] after [delay] µs; [now ()] must return
    the current simulation time. *)

val send :
  t -> queue:int -> payload_bytes:int -> on_complete:(float -> unit) -> unit
(** Enqueue one UDP message (fragmented per {!Frame}) on a TX queue.
    [on_complete] fires with the wire-completion time of its last frame. *)

val busy : t -> bool

val total_bytes : t -> int

val utilization : t -> elapsed:float -> float
(** Fraction of [elapsed] µs the wire spent transmitting since the last
    {!reset_counters}. *)

val reset_counters : t -> unit

val pending_messages : t -> int
