(** Frame-level round-robin transmit scheduler.

    A multi-queue NIC does not serialize whole messages FIFO: the DMA
    engine services the per-core TX queues round-robin at {e frame}
    granularity.  A small reply therefore waits at most one frame time per
    active queue — it is never stuck behind all 340 frames of a 500 KB
    reply on another queue — while large replies stretch in proportion to
    concurrent traffic.  This is essential to reproduce the paper's
    low-load tail latencies: with FIFO-by-message a 40 Gbit wire alone
    would add a ~50 µs tail at any load.

    The scheduler is driven by the simulator through the [schedule]
    closure supplied at creation, which must arrange for {!frame_done} to
    run after the given delay; one event per frame is processed only
    while the wire is busy.  The wire serializes frames, so at most one
    callback is ever outstanding — the caller can wire [schedule] to a
    single preallocated (typed) simulator event and the per-frame path
    allocates nothing.

    Completion is reported through the single [on_complete] callback
    installed at creation, keyed by the integer [token] the caller passed
    to {!send} (the server uses its request-pool slot).  Messages are
    pooled internally, so steady-state sends allocate nothing. *)

type t

val create :
  gbps:float ->
  queues:int ->
  schedule:(float -> unit) ->
  now:(unit -> float) ->
  on_complete:(int -> float -> unit) ->
  t
(** [schedule delay] must arrange for {!frame_done} on this scheduler to
    run after [delay] µs; [now ()] must return the current simulation
    time.  [on_complete token finish] fires when the message submitted
    with [token] finishes its last frame. *)

val frame_done : t -> unit
(** Wire-completion callback for the frame currently on the wire: reports
    the message if that was its last frame and puts the next frame on the
    wire.  Must be invoked exactly once per [schedule] request, after the
    requested delay. *)

val send : t -> queue:int -> payload_bytes:int -> token:int -> unit
(** Enqueue one UDP message (fragmented per {!Frame}) on a TX queue.
    [on_complete] (from {!create}) fires with [token] and the
    wire-completion time of its last frame. *)

val busy : t -> bool

val total_bytes : t -> int

val utilization : t -> elapsed:float -> float
(** Fraction of [elapsed] µs the wire spent transmitting since the last
    {!reset_counters}. *)

val reset_counters : t -> unit

val pending_messages : t -> int
