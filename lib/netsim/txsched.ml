(* Messages are pooled: [send] reuses a record from [pool] instead of
   allocating, and completion is reported through the single [on_complete]
   callback installed at creation, keyed by the caller's [token] — so the
   steady-state TX path allocates nothing per message or per frame. *)
type message = {
  mutable full_frames_left : int;
  mutable full_frame_bytes : int;
  mutable last_frame_bytes : int; (* transmitted after all full frames *)
  mutable last_done : bool;
  mutable token : int;
}

(* Flat float cell: avoids boxing the per-frame busy-time accumulation
   (a float field in the mixed record below would box on every store). *)
type accum = { mutable v : float }

type t = {
  us_per_byte : float;
  queues : message Fifo.t array;
  pool : message Fifo.t; (* free messages for reuse *)
  mutable rr : int; (* next queue to consider *)
  mutable wire_busy : bool;
  busy_accum : accum;
  mutable total_bytes : int;
  schedule : float -> unit;
      (* arrange for [frame_done] to be called after the given delay: the
         wire serializes frames, so at most one callback is outstanding
         and the caller can wire it to a single preallocated (typed)
         simulator event — nothing is allocated per frame *)
  now : unit -> float;
  on_complete : int -> float -> unit;
  mutable inflight : message; (* message owning the frame on the wire *)
}

let dummy_message =
  {
    full_frames_left = 0;
    full_frame_bytes = 0;
    last_frame_bytes = 0;
    last_done = false;
    token = -1;
  }

let alloc_message t =
  if Fifo.is_empty t.pool then
    {
      full_frames_left = 0;
      full_frame_bytes = 0;
      last_frame_bytes = 0;
      last_done = false;
      token = -1;
    }
  else Fifo.pop_exn t.pool

let free_message t m =
  m.token <- -1;
  Fifo.push t.pool m

let message_done m = m.full_frames_left = 0 && m.last_done

(* Pick the next frame to put on the wire, round-robin over non-empty
   queues.  On success stores the owning message in [t.inflight] and
   returns the frame's wire bytes; returns -1 when every queue is empty
   (frames always cost at least their headers, so 0 is never a valid
   size). *)
let next_frame_bytes t =
  let n = Array.length t.queues in
  let rec scan i =
    if i >= n then -1
    else begin
      let qi = (t.rr + i) mod n in
      let q = t.queues.(qi) in
      if Fifo.is_empty q then scan (i + 1)
      else begin
        let m = Fifo.peek_exn q in
        t.rr <- (qi + 1) mod n;
        let bytes =
          if m.full_frames_left > 0 then begin
            m.full_frames_left <- m.full_frames_left - 1;
            m.full_frame_bytes
          end
          else begin
            m.last_done <- true;
            m.last_frame_bytes
          end
        in
        if message_done m then ignore (Fifo.pop_exn q);
        t.inflight <- m;
        bytes
      end
    end
  in
  scan 0

let pump t =
  let bytes = next_frame_bytes t in
  if bytes < 0 then t.wire_busy <- false
  else begin
    t.wire_busy <- true;
    let dt = float_of_int bytes *. t.us_per_byte in
    t.busy_accum.v <- t.busy_accum.v +. dt;
    t.total_bytes <- t.total_bytes + bytes;
    t.schedule dt
  end

let frame_done t =
  let m = t.inflight in
  if message_done m then begin
    t.on_complete m.token (t.now ());
    free_message t m
  end;
  pump t

let create ~gbps ~queues ~schedule ~now ~on_complete =
  if not (gbps > 0.0) then invalid_arg "Txsched.create: rate must be > 0";
  if queues < 1 then invalid_arg "Txsched.create: need at least one queue";
  {
    us_per_byte = 8.0e-3 /. gbps;
    queues = Array.init queues (fun _ -> Fifo.create ~dummy:dummy_message ());
    pool = Fifo.create ~dummy:dummy_message ();
    rr = 0;
    wire_busy = false;
    busy_accum = { v = 0.0 };
    total_bytes = 0;
    schedule;
    now;
    on_complete;
    inflight = dummy_message;
  }

let send t ~queue ~payload_bytes ~token =
  if payload_bytes < 0 then invalid_arg "Txsched.send: negative payload";
  let max_p = Frame.max_udp_payload in
  let full = payload_bytes / max_p in
  let rest = payload_bytes - (full * max_p) in
  let m = alloc_message t in
  let full_wire = Frame.wire_bytes_for_frame_payload max_p in
  (* A payload that is an exact multiple of the fragment size has no
     partial trailer; its "last frame" is one of the full ones. *)
  if rest = 0 && full > 0 then begin
    m.full_frames_left <- full - 1;
    m.full_frame_bytes <- full_wire;
    m.last_frame_bytes <- full_wire
  end
  else begin
    m.full_frames_left <- full;
    m.full_frame_bytes <- full_wire;
    m.last_frame_bytes <- Frame.wire_bytes_for_frame_payload rest
  end;
  m.last_done <- false;
  m.token <- token;
  Fifo.push t.queues.(queue) m;
  if not t.wire_busy then pump t

let busy t = t.wire_busy

let total_bytes t = t.total_bytes

let utilization t ~elapsed =
  if not (elapsed > 0.0) then invalid_arg "Txsched.utilization: elapsed must be > 0";
  Float.min 1.0 (t.busy_accum.v /. elapsed)

let reset_counters t =
  t.busy_accum.v <- 0.0;
  t.total_bytes <- 0

let pending_messages t =
  Array.fold_left (fun acc q -> acc + Fifo.length q) 0 t.queues
