type flow = { dst_port : int; src_port : int option }

type t = {
  capacity : int;
  queues : int;
  rules : (flow, int) Hashtbl.t;
}

let create ?(capacity = 8192) ~queues () =
  if queues < 1 then invalid_arg "Flow_director.create: need at least one queue";
  if capacity < 1 then invalid_arg "Flow_director.create: capacity must be >= 1";
  { capacity; queues; rules = Hashtbl.create 64 }

let validate_flow flow =
  if flow.dst_port < 0 || flow.dst_port > 0xFFFF then
    invalid_arg "Flow_director: dst_port out of range";
  match flow.src_port with
  | Some p when p < 0 || p > 0xFFFF -> invalid_arg "Flow_director: src_port out of range"
  | Some _ | None -> ()

let add_rule t flow ~queue =
  validate_flow flow;
  if queue < 0 || queue >= t.queues then Error `Bad_queue
  else if Hashtbl.length t.rules >= t.capacity && not (Hashtbl.mem t.rules flow) then
    Error `Table_full
  else begin
    Hashtbl.replace t.rules flow queue;
    Ok ()
  end

let remove_rule t flow =
  validate_flow flow;
  let existed = Hashtbl.mem t.rules flow in
  Hashtbl.remove t.rules flow;
  existed

let rule_count t = Hashtbl.length t.rules

let dispatch t ~src_ip ~dst_ip ~src_port ~dst_port =
  (* Most specific first: (dst, src) pair, then dst-only, then RSS. *)
  match Hashtbl.find_opt t.rules { dst_port; src_port = Some src_port } with
  | Some q -> q
  | None -> (
      match Hashtbl.find_opt t.rules { dst_port; src_port = None } with
      | Some q -> q
      | None ->
          Toeplitz.queue_of_hash
            (Toeplitz.hash_ipv4 ~src_ip ~dst_ip ~src_port ~dst_port ())
            ~queues:t.queues)

let program_identity t ~base_port =
  for q = 0 to t.queues - 1 do
    match add_rule t { dst_port = base_port + q; src_port = None } ~queue:q with
    | Ok () -> ()
    | Error `Bad_queue -> assert false
    | Error `Table_full ->
        invalid_arg "Flow_director.program_identity: table too small"
  done
