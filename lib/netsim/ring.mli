(** Bounded lock-free multi-producer/multi-consumer ring.

    Stands in for the DPDK rte_ring that Minos uses to dispatch large
    requests from small cores to large cores (§4.1).  The implementation is
    Vyukov's bounded MPMC queue: each slot carries a sequence number that
    encodes whether it is ready for a producer or a consumer, so both ends
    make progress with one CAS each and no locks.

    Safe for use from multiple OCaml domains. *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity] must be a power of two, >= 2. *)

val capacity : 'a t -> int

val try_push : 'a t -> 'a -> bool
(** [false] when the ring is full. *)

val try_pop : 'a t -> 'a option
(** [None] when the ring is empty. *)

val length : 'a t -> int
(** Approximate occupancy (exact when quiescent). *)

val is_empty : 'a t -> bool
