(** Bounded lock-free multi-producer/multi-consumer ring.

    Stands in for the DPDK rte_ring that Minos uses to dispatch large
    requests from small cores to large cores (§4.1).  The implementation is
    Vyukov's bounded MPMC queue: each slot carries a sequence number that
    encodes whether it is ready for a producer or a consumer, so both ends
    make progress with one CAS each and no locks.

    Slots store values behind a private sentinel (no ['a option] box), so
    [try_push] allocates nothing and [pop_exn] allocates nothing; only
    [try_pop] allocates its [Some] result.

    Memory-model contract (OCaml 5, see DESIGN.md §8): a producer's plain
    write to the slot is published by the release [Atomic.set] of the slot
    sequence number, and a consumer's acquire [Atomic.get] of that sequence
    number happens-before its plain read of the slot.  The interleaving
    model checker in lib/check verifies this ordering exhaustively on small
    histories via [Make].

    Safe for use from multiple OCaml domains. *)

exception Empty

(** Operations provided by every instantiation. *)
module type S = sig
  type 'a t

  val create : capacity:int -> 'a t
  (** [capacity] must be a power of two, >= 2. *)

  val capacity : 'a t -> int

  val try_push : 'a t -> 'a -> bool
  (** [false] when the ring is full.  Does not allocate. *)

  val try_pop : 'a t -> 'a option
  (** [None] when the ring is empty.  Allocates the [Some] on success. *)

  val pop_exn : 'a t -> 'a
  (** Like [try_pop] but raises {!Empty} when the ring is empty; does not
      allocate.  Preferred in polling hot loops. *)

  val length : 'a t -> int
  (** Occupancy estimate, always within [\[0, capacity\]].  [head] and
      [tail] are two separate atomic reads, not one atomic pair, so under
      concurrent pushes/pops the result is only a snapshot: it is exact
      when the ring is quiescent and otherwise reflects some state the
      ring passed through near the two reads.  The raw [tail - head]
      difference can transiently fall outside [\[0, capacity\]] (a pop's
      head CAS can land between the two reads); the result is clamped so
      callers never observe a negative or over-capacity length. *)

  val is_empty : 'a t -> bool
  (** [length t = 0]; the same snapshot semantics as {!length}. *)
end

(** The ring over an explicit atomics implementation.  The model checker
    instantiates this with traced atomics; production uses the specialized
    default below (same algorithm, hand-instantiated on [Stdlib.Atomic] so
    the hot path pays no functor indirection — see test_netsim.ml's
    equivalence property guarding the two against drift). *)
module Make (_ : Atomic_ops.S) : S

include S
