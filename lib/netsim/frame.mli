(** Ethernet/IP/UDP framing arithmetic.

    Minos speaks UDP over IPv4 over Ethernet (§4.1); requests and replies
    that exceed one MTU are fragmented at the UDP level by the client and
    server.  This module centralizes the byte accounting used both by the
    cost model (packets per request) and by the NIC bandwidth model (bytes
    on the wire, including per-frame overheads). *)

val mtu : int
(** 1500: maximum Ethernet payload (IP header onward). *)

val eth_header : int
(** 14 (header) + 4 (FCS) = 18 bytes. *)

val eth_overhead_on_wire : int
(** Preamble (8) + inter-frame gap (12) = 20 bytes consumed on the wire per
    frame beyond the frame itself. *)

val ip_header : int
(** 20 bytes (no options). *)

val udp_header : int
(** 8 bytes. *)

val max_udp_payload : int
(** UDP payload bytes that fit in one frame: [mtu - ip_header - udp_header]
    = 1472. *)

val frames_for_payload : int -> int
(** Number of UDP fragments needed for a payload of this many bytes.  A
    zero-byte payload still needs one frame. *)

val wire_bytes_for_frame_payload : int -> int
(** Bytes consumed on the wire by a single frame carrying this UDP payload
    (payload + UDP + IP + Ethernet + preamble/IFG). *)

val wire_bytes_for_payload : int -> int
(** Total wire bytes to carry a (possibly fragmented) UDP payload. *)
