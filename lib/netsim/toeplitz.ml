type key = string

let default_key =
  let bytes =
    [
      0x6d; 0x5a; 0x56; 0xda; 0x25; 0x5b; 0x0e; 0xc2; 0x41; 0x67;
      0x25; 0x3d; 0x43; 0xa3; 0x8f; 0xb0; 0xd0; 0xca; 0x2b; 0xcb;
      0xae; 0x7b; 0x30; 0xb4; 0x77; 0xcb; 0x2d; 0xa3; 0x80; 0x30;
      0xf2; 0x0c; 0x6a; 0x42; 0xb7; 0x3b; 0xbe; 0xac; 0x01; 0xfa;
    ]
  in
  String.init (List.length bytes) (fun i -> Char.chr (List.nth bytes i))

(* The Toeplitz hash: for each set bit of the input (MSB first), XOR in the
   32-bit window of the key starting at that bit position. *)
let hash_bytes ?(key = default_key) input =
  if String.length key < String.length input + 4 then
    invalid_arg "Toeplitz.hash_bytes: key too short for input";
  let result = ref 0l in
  (* Sliding 32-bit window of the key, advanced one bit per input bit. *)
  let window =
    ref
      (Int32.logor
         (Int32.shift_left (Int32.of_int (Char.code key.[0])) 24)
         (Int32.logor
            (Int32.shift_left (Int32.of_int (Char.code key.[1])) 16)
            (Int32.logor
               (Int32.shift_left (Int32.of_int (Char.code key.[2])) 8)
               (Int32.of_int (Char.code key.[3])))))
  in
  for i = 0 to String.length input - 1 do
    let b = Char.code input.[i] in
    let next_key_byte =
      if i + 4 < String.length key then Char.code key.[i + 4] else 0
    in
    for bit = 7 downto 0 do
      if b land (1 lsl bit) <> 0 then result := Int32.logxor !result !window;
      (* Shift the window left by one bit, pulling in the next key bit. *)
      let incoming = (next_key_byte lsr bit) land 1 in
      window := Int32.logor (Int32.shift_left !window 1) (Int32.of_int incoming)
    done
  done;
  !result

let be32 v =
  String.init 4 (fun i ->
      Char.chr (Int32.to_int (Int32.shift_right_logical v (8 * (3 - i))) land 0xFF))

let be16 v = String.init 2 (fun i -> Char.chr ((v lsr (8 * (1 - i))) land 0xFF))

let hash_ipv4 ?key ~src_ip ~dst_ip ~src_port ~dst_port () =
  hash_bytes ?key (be32 src_ip ^ be32 dst_ip ^ be16 src_port ^ be16 dst_port)

let queue_of_hash h ~queues =
  if queues <= 0 then invalid_arg "Toeplitz.queue_of_hash: queues must be > 0";
  Int32.to_int (Int32.logand h 0x7FFFFFFFl) mod queues

let find_src_port ?key ~src_ip ~dst_ip ~dst_port ~queues ~target_queue () =
  if target_queue < 0 || target_queue >= queues then
    invalid_arg "Toeplitz.find_src_port: target queue out of range";
  let rec go port =
    if port > 0xFFFF then raise Not_found
    else begin
      let h = hash_ipv4 ?key ~src_ip ~dst_ip ~src_port:port ~dst_port () in
      if queue_of_hash h ~queues = target_queue then port else go (port + 1)
    end
  in
  go 1024
