(** Transmit-side line model of the NIC.

    The server's 40 Gbit NIC serializes outgoing frames at line rate; when
    the offered reply traffic approaches the line rate, replies queue at
    the NIC and end-to-end latency includes that queueing.  This is the
    effect that makes the default workload network-bound (the paper reports
    93 % NIC utilization at Minos' peak, §6.4) and that Figure 8 removes by
    sampling replies.

    The model is a single FIFO resource: a transmission occupies the line
    for [bytes * 8 / rate] microseconds starting no earlier than the end of
    the previous transmission. *)

type t

val create : gbps:float -> t
(** [create ~gbps:40.0] models a 40 Gbit/s link. *)

val gbps : t -> float

val transmit : t -> now:float -> bytes:int -> float
(** [transmit t ~now ~bytes] enqueues [bytes] on the wire and returns the
    completion time.  Also accumulates busy time for {!utilization}. *)

val busy_until : t -> float
(** Time at which the line becomes idle given current commitments. *)

val total_bytes : t -> int

val utilization : t -> elapsed:float -> float
(** Fraction of [elapsed] µs the line spent transmitting, in [0, 1]. *)

val reset_counters : t -> unit
(** Zero the byte/busy counters (e.g. after warm-up) without forgetting
    the current line occupancy. *)
