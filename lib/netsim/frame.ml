let mtu = 1500
let eth_header = 18
let eth_overhead_on_wire = 20
let ip_header = 20
let udp_header = 8
let max_udp_payload = mtu - ip_header - udp_header

let frames_for_payload bytes =
  if bytes < 0 then invalid_arg "Frame.frames_for_payload: negative size";
  if bytes = 0 then 1 else (bytes + max_udp_payload - 1) / max_udp_payload

let wire_bytes_for_frame_payload payload =
  if payload < 0 || payload > max_udp_payload then
    invalid_arg "Frame.wire_bytes_for_frame_payload: payload out of range";
  payload + udp_header + ip_header + eth_header + eth_overhead_on_wire

let wire_bytes_for_payload bytes =
  let n = frames_for_payload bytes in
  let full = bytes / max_udp_payload in
  let rest = bytes - (full * max_udp_payload) in
  let full_bytes = full * wire_bytes_for_frame_payload max_udp_payload in
  if rest = 0 && full = n then full_bytes
  else full_bytes + wire_bytes_for_frame_payload rest
