(** Toeplitz hash used by Receive-Side Scaling (RSS).

    Commodity NICs compute this hash over the IPv4 4-tuple (source address,
    destination address, source port, destination port) and use low-order
    bits of the result to pick the RX queue for an incoming frame.  The
    paper's clients probe source ports until the hash lands on the intended
    queue; our simulated clients do the same computation directly.

    The implementation is verified against the canonical Microsoft RSS test
    vectors. *)

type key = string
(** The 40-byte RSS secret key. *)

val default_key : key
(** The well-known Microsoft verification key
    [6d 5a 56 da 25 5b 0e c2 ...]. *)

val hash_bytes : ?key:key -> string -> int32
(** Toeplitz hash of an arbitrary input string. *)

val hash_ipv4 :
  ?key:key -> src_ip:int32 -> dst_ip:int32 -> src_port:int -> dst_port:int -> unit -> int32
(** Hash of the IPv4+ports input: src ip, dst ip, src port, dst port, each
    big-endian, concatenated — the NDIS "IPv4 with ports" hash type. *)

val queue_of_hash : int32 -> queues:int -> int
(** RSS indirection: hash modulo the number of queues (the common
    power-of-two table configuration). *)

val find_src_port :
  ?key:key ->
  src_ip:int32 ->
  dst_ip:int32 -> dst_port:int -> queues:int -> target_queue:int -> unit -> int
(** The port-probing procedure of §5.1: the smallest source port >= 1024
    that makes the flow land on [target_queue].  Raises [Not_found] if no
    16-bit port works (practically impossible for queues <= 64k). *)
