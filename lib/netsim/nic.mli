(** Multi-queue NIC model.

    One receive queue per core (the paper configures n RX and n TX queues),
    hardware dispatch chooses the RX queue per request — at random for GETs,
    by keyhash for PUTs, both realized by clients picking a UDP source port
    whose Toeplitz hash lands on the intended queue — and a single shared
    transmit line ({!Txlink}) serializes replies.

    The element type is abstract: the server library enqueues its own
    request records. *)

type 'a t

val create : queues:int -> tx_gbps:float -> dummy:'a -> 'a t
(** [dummy] fills vacated RX-queue slots (see {!Fifo.create}). *)

val queues : 'a t -> int

val rx : 'a t -> int -> 'a Fifo.t
(** The RX queue with the given id. *)

val tx : 'a t -> Txlink.t

val deliver : 'a t -> queue:int -> wire_bytes:int -> frames:int -> 'a -> unit
(** A request (possibly spanning several frames) arrives on [queue];
    updates per-queue frame/byte counters and enqueues the element. *)

type queue_stats = { mutable frames : int; mutable wire_bytes : int }
(** Counters are updated in place on every delivery; treat the returned
    record as read-only. *)

val rx_stats : 'a t -> int -> queue_stats

val total_rx_wire_bytes : 'a t -> int
