type 'a cell = { seq : int Atomic.t; mutable value : 'a option }

type 'a t = {
  buffer : 'a cell array;
  mask : int;
  head : int Atomic.t; (* next position to pop *)
  tail : int Atomic.t; (* next position to push *)
}

let create ~capacity =
  if capacity < 2 || capacity land (capacity - 1) <> 0 then
    invalid_arg "Ring.create: capacity must be a power of two >= 2";
  {
    buffer = Array.init capacity (fun i -> { seq = Atomic.make i; value = None });
    mask = capacity - 1;
    head = Atomic.make 0;
    tail = Atomic.make 0;
  }

let capacity t = t.mask + 1

let try_push t v =
  let rec attempt () =
    let pos = Atomic.get t.tail in
    let cell = t.buffer.(pos land t.mask) in
    let seq = Atomic.get cell.seq in
    let diff = seq - pos in
    if diff = 0 then
      if Atomic.compare_and_set t.tail pos (pos + 1) then begin
        cell.value <- Some v;
        Atomic.set cell.seq (pos + 1);
        true
      end
      else attempt ()
    else if diff < 0 then false (* full *)
    else attempt () (* another producer grabbed this slot; retry *)
  in
  attempt ()

let try_pop t =
  let rec attempt () =
    let pos = Atomic.get t.head in
    let cell = t.buffer.(pos land t.mask) in
    let seq = Atomic.get cell.seq in
    let diff = seq - (pos + 1) in
    if diff = 0 then
      if Atomic.compare_and_set t.head pos (pos + 1) then begin
        let v = cell.value in
        cell.value <- None;
        Atomic.set cell.seq (pos + t.mask + 1);
        v
      end
      else attempt ()
    else if diff < 0 then None (* empty *)
    else attempt ()
  in
  attempt ()

let length t =
  let tail = Atomic.get t.tail and head = Atomic.get t.head in
  max 0 (tail - head)

let is_empty t = length t = 0
