(* Vyukov bounded MPMC ring, twice: once as a functor over the atomics
   implementation (model-checked by lib/check on traced atomics) and once
   hand-specialized on Stdlib.Atomic for production, because the build has
   no flambda and a functor application would turn every atomic primitive
   into an indirect call on this hot path.  The two bodies must stay
   textually identical up to the [A.]/[Atomic.] prefix — except that the
   functor holds each slot in an [A.cell] (a bare mutable field in
   production, a traced location under the model checker, so slot accesses
   interleave and publication ordering is checkable) — and the qcheck
   equivalence property in test/test_netsim.ml enforces agreement. *)

exception Empty

module type S = sig
  type 'a t

  val create : capacity:int -> 'a t
  val capacity : 'a t -> int
  val try_push : 'a t -> 'a -> bool
  val try_pop : 'a t -> 'a option
  val pop_exn : 'a t -> 'a
  val length : 'a t -> int
  val is_empty : 'a t -> bool
end

(* Unique block marking an empty slot.  Slots hold [Obj.repr] of the user
   value between push and pop, so pushing allocates nothing (the former
   ['a option] box is gone) and physical equality with [sentinel] cannot
   collide with any user value. *)
let sentinel : Obj.t = Obj.repr (ref 0)

let bad_capacity = "Ring.create: capacity must be a power of two >= 2"

module Make (A : Atomic_ops.S) = struct
  type cell = { seq : int A.t; value : Obj.t A.cell }

  type 'a t = {
    buffer : cell array;
    mask : int;
    head : int A.t; (* next position to pop *)
    tail : int A.t; (* next position to push *)
  }

  let create ~capacity =
    if capacity < 2 || capacity land (capacity - 1) <> 0 then
      invalid_arg bad_capacity;
    {
      buffer =
        Array.init capacity (fun i -> { seq = A.make i; value = A.cell sentinel });
      mask = capacity - 1;
      head = A.make 0;
      tail = A.make 0;
    }

  let capacity t = t.mask + 1

  (* Top-level self-recursion for the CAS retry, not a local [attempt]
     closure: a closure would capture [t]/[v] and allocate per call,
     defeating the allocation-free contract. *)
  let rec try_push t v =
    let pos = A.get t.tail in
    let cell = t.buffer.(pos land t.mask) in
    let seq = A.get cell.seq in
    let diff = seq - pos in
    if diff = 0 then
      if A.compare_and_set t.tail pos (pos + 1) then begin
        A.write cell.value (Obj.repr v);
        A.set cell.seq (pos + 1);
        true
      end
      else try_push t v
    else if diff < 0 then false (* full *)
    else try_push t v (* another producer grabbed this slot; retry *)

  let rec pop_exn : type a. a t -> a =
   fun t ->
    let pos = A.get t.head in
    let cell = t.buffer.(pos land t.mask) in
    let seq = A.get cell.seq in
    let diff = seq - (pos + 1) in
    if diff = 0 then
      if A.compare_and_set t.head pos (pos + 1) then begin
        let v = A.read cell.value in
        A.write cell.value sentinel;
        A.set cell.seq (pos + t.mask + 1);
        (* A sentinel here means a producer published the slot sequence
           before writing the value: exactly the ordering bug the model
           checker hunts.  Free (one physical compare) outside -noassert
           builds. *)
        assert (v != sentinel);
        (Obj.obj v : a)
      end
      else pop_exn t
    else if diff < 0 then raise Empty (* empty *)
    else pop_exn t

  let try_pop t = match pop_exn t with v -> Some v | exception Empty -> None

  let length t =
    let tail = A.get t.tail in
    let head = A.get t.head in
    let len = tail - head in
    if len < 0 then 0 else if len > t.mask + 1 then t.mask + 1 else len

  let is_empty t = length t = 0
end

(* ------------------------------------------------------------------ *)
(* Specialized default instantiation: [Make] with [A := Stdlib.Atomic],
   expanded by hand so atomic accesses compile to primitives. *)

type cell = { seq : int Atomic.t; mutable value : Obj.t }

type 'a t = {
  buffer : cell array;
  mask : int;
  head : int Atomic.t; (* next position to pop *)
  tail : int Atomic.t; (* next position to push *)
}

let create ~capacity =
  if capacity < 2 || capacity land (capacity - 1) <> 0 then
    invalid_arg bad_capacity;
  {
    buffer = Array.init capacity (fun i -> { seq = Atomic.make i; value = sentinel });
    mask = capacity - 1;
    head = Atomic.make 0;
    tail = Atomic.make 0;
  }

let capacity t = t.mask + 1

(* Top-level self-recursion for the CAS retry, not a local [attempt]
   closure: a closure would capture [t]/[v] and allocate per call,
   defeating the allocation-free contract. *)
let rec try_push t v =
  let pos = Atomic.get t.tail in
  let cell = t.buffer.(pos land t.mask) in
  let seq = Atomic.get cell.seq in
  let diff = seq - pos in
  if diff = 0 then
    if Atomic.compare_and_set t.tail pos (pos + 1) then begin
      cell.value <- Obj.repr v;
      Atomic.set cell.seq (pos + 1);
      true
    end
    else try_push t v
  else if diff < 0 then false (* full *)
  else try_push t v (* another producer grabbed this slot; retry *)

let rec pop_exn : type a. a t -> a =
 fun t ->
  let pos = Atomic.get t.head in
  let cell = t.buffer.(pos land t.mask) in
  let seq = Atomic.get cell.seq in
  let diff = seq - (pos + 1) in
  if diff = 0 then
    if Atomic.compare_and_set t.head pos (pos + 1) then begin
      let v = cell.value in
      cell.value <- sentinel;
      Atomic.set cell.seq (pos + t.mask + 1);
      assert (v != sentinel);
      (Obj.obj v : a)
    end
    else pop_exn t
  else if diff < 0 then raise Empty (* empty *)
  else pop_exn t

let try_pop t = match pop_exn t with v -> Some v | exception Empty -> None

let length t =
  let tail = Atomic.get t.tail in
  let head = Atomic.get t.head in
  let len = tail - head in
  if len < 0 then 0 else if len > t.mask + 1 then t.mask + 1 else len

let is_empty t = length t = 0
