(* A reshard plan is the elastic counterpart of a fault plan: a named
   list of timed reconfiguration events in the same textual key=value
   format (Fault.Plan), so chaos and reshard scenarios read alike and
   can be driven through the same harnesses. *)

type event =
  | Add_server of { at_us : float; drain_us : float; dual_us : float }
  | Remove_server of {
      server : int;
      at_us : float;
      drain_us : float;
      dual_us : float;
    }
  | Add_replica of { shard : int; at_us : float }
  | Drop_replica of { shard : int; at_us : float }

type t = { name : string; events : event list }

let empty = { name = "noop"; events = [] }

let at_us = function
  | Add_server { at_us; _ }
  | Remove_server { at_us; _ }
  | Add_replica { at_us; _ }
  | Drop_replica { at_us; _ } -> at_us

(* Membership changes own a three-phase window [at, at+drain+dual):
   drain, then dual-route, then (per key group, staggered inside the
   dual phase) cutover.  Replica events are instants. *)
let window = function
  | Add_server { at_us; drain_us; dual_us } ->
      Some (at_us, at_us +. drain_us +. dual_us)
  | Remove_server { at_us; drain_us; dual_us; _ } ->
      Some (at_us, at_us +. drain_us +. dual_us)
  | Add_replica _ | Drop_replica _ -> None

(* ------------------------------------------------------------------ *)
(* Validation *)

let phases_ok ~at_us ~drain_us ~dual_us =
  Float.is_finite at_us && at_us >= 0.0
  && Float.is_finite drain_us && drain_us >= 0.0
  && Float.is_finite dual_us && dual_us >= 0.0

let validate_event = function
  | Add_server { at_us; drain_us; dual_us } ->
      if phases_ok ~at_us ~drain_us ~dual_us then Ok ()
      else Error "add-server: at/drain/dual must be finite and >= 0"
  | Remove_server { server; at_us; drain_us; dual_us } ->
      if server < 0 then Error "remove-server: bad server index"
      else if phases_ok ~at_us ~drain_us ~dual_us then Ok ()
      else Error "remove-server: at/drain/dual must be finite and >= 0"
  | Add_replica { shard; at_us } ->
      if shard < 0 then Error "add-replica: bad shard index"
      else if Float.is_finite at_us && at_us >= 0.0 then Ok ()
      else Error "add-replica: at must be finite and >= 0"
  | Drop_replica { shard; at_us } ->
      if shard < 0 then Error "drop-replica: bad shard index"
      else if Float.is_finite at_us && at_us >= 0.0 then Ok ()
      else Error "drop-replica: at must be finite and >= 0"

(* Migration windows must not overlap: the routing table handles one
   membership change at a time (epochs are totally ordered). *)
let windows_disjoint events =
  let ws = List.filter_map window events in
  let ws = List.sort (fun (a, _) (b, _) -> Float.compare a b) ws in
  let rec go = function
    | (_, e1) :: ((s2, _) :: _ as rest) ->
        if s2 < e1 then Error "migration windows overlap" else go rest
    | _ -> Ok ()
  in
  go ws

let validate t =
  let rec go = function
    | [] -> windows_disjoint t.events
    | e :: rest -> (
        match validate_event e with Ok () -> go rest | Error _ as e -> e)
  in
  go t.events

(* ------------------------------------------------------------------ *)
(* Canned scenarios (times as fractions of the measurement window, so
   the same name works at quick and full scale) *)

let canned_names = [ "noop"; "add-remove"; "replica-cycle" ]

let canned name ~warmup_us ~duration_us =
  let w = duration_us -. warmup_us in
  match name with
  | "noop" -> Some { empty with name }
  | "add-remove" ->
      (* One server joins early in the window, another leaves later:
         both migrations complete well before the run ends. *)
      Some
        {
          name;
          events =
            [
              Add_server
                {
                  at_us = warmup_us +. (0.10 *. w);
                  drain_us = 0.05 *. w;
                  dual_us = 0.20 *. w;
                };
              Remove_server
                {
                  server = 1;
                  at_us = warmup_us +. (0.55 *. w);
                  drain_us = 0.03 *. w;
                  dual_us = 0.15 *. w;
                };
            ];
        }
  | "replica-cycle" ->
      Some
        {
          name;
          events =
            [
              Add_replica { shard = 0; at_us = warmup_us +. (0.20 *. w) };
              Drop_replica { shard = 0; at_us = warmup_us +. (0.70 *. w) };
            ];
        }
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Textual format (same conventions as Fault.Plan: '#' comments, a
   'plan NAME' header, one 'keyword key=value ...' event per line) *)

let fail line msg = Error ("line " ^ string_of_int line ^ ": " ^ msg)

let split_fields s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun f -> f <> "")

let lookup pairs key = List.assoc_opt key pairs

let parse_pairs line fields =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | f :: rest -> (
        match String.index_opt f '=' with
        | None -> fail line ("expected key=value, got '" ^ f ^ "'")
        | Some i ->
            let k = String.sub f 0 i in
            let v = String.sub f (i + 1) (String.length f - i - 1) in
            go ((k, v) :: acc) rest)
  in
  go [] fields

let parse_float line key pairs ~default =
  match lookup pairs key with
  | None -> (
      match default with
      | Some d -> Ok d
      | None -> fail line ("missing " ^ key ^ "="))
  | Some v -> (
      match float_of_string_opt v with
      | Some f -> Ok f
      | None -> fail line ("bad float for " ^ key ^ ": '" ^ v ^ "'"))

let parse_index line key pairs =
  match lookup pairs key with
  | None -> fail line ("missing " ^ key ^ "=")
  | Some v -> (
      match int_of_string_opt v with
      | Some i when i >= 0 -> Ok i
      | Some _ | None -> fail line ("bad index for " ^ key ^ ": '" ^ v ^ "'"))

let ( let* ) = Result.bind

let parse_event line keyword fields =
  let* pairs = parse_pairs line fields in
  let* at_us = parse_float line "at" pairs ~default:None in
  match keyword with
  | "add-server" ->
      let* drain_us = parse_float line "drain" pairs ~default:(Some 2000.0) in
      let* dual_us = parse_float line "dual" pairs ~default:(Some 10000.0) in
      Ok (Add_server { at_us; drain_us; dual_us })
  | "remove-server" ->
      let* server = parse_index line "server" pairs in
      let* drain_us = parse_float line "drain" pairs ~default:(Some 2000.0) in
      let* dual_us = parse_float line "dual" pairs ~default:(Some 10000.0) in
      Ok (Remove_server { server; at_us; drain_us; dual_us })
  | "add-replica" ->
      let* shard = parse_index line "shard" pairs in
      Ok (Add_replica { shard; at_us })
  | "drop-replica" ->
      let* shard = parse_index line "shard" pairs in
      Ok (Drop_replica { shard; at_us })
  | kw -> fail line ("unknown event '" ^ kw ^ "'")

let of_string ?(name = "custom") src =
  let lines = String.split_on_char '\n' src in
  let rec go n acc name = function
    | [] -> Ok { name; events = List.rev acc }
    | line :: rest -> (
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        match split_fields line with
        | [] -> go (n + 1) acc name rest
        | [ "plan"; plan_name ] -> go (n + 1) acc plan_name rest
        | keyword :: fields -> (
            match parse_event n keyword fields with
            | Ok ev -> go (n + 1) (ev :: acc) name rest
            | Error _ as e -> e))
  in
  let* plan = go 1 [] name lines in
  match validate plan with Ok () -> Ok plan | Error msg -> Error msg

let of_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | src -> of_string ~name:(Filename.remove_extension (Filename.basename path)) src
  | exception Sys_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Rendering *)

let buf_kv b k f =
  Buffer.add_char b ' ';
  Buffer.add_string b k;
  Buffer.add_char b '=';
  f b

let buf_float b v = Buffer.add_string b (string_of_float v)
let buf_int b i = Buffer.add_string b (string_of_int i)

let to_string t =
  let b = Buffer.create 256 in
  Buffer.add_string b ("plan " ^ t.name ^ "\n");
  List.iter
    (fun ev ->
      (match ev with
      | Add_server { at_us; drain_us; dual_us } ->
          Buffer.add_string b "add-server";
          buf_kv b "at" (fun b -> buf_float b at_us);
          buf_kv b "drain" (fun b -> buf_float b drain_us);
          buf_kv b "dual" (fun b -> buf_float b dual_us)
      | Remove_server { server; at_us; drain_us; dual_us } ->
          Buffer.add_string b "remove-server";
          buf_kv b "server" (fun b -> buf_int b server);
          buf_kv b "at" (fun b -> buf_float b at_us);
          buf_kv b "drain" (fun b -> buf_float b drain_us);
          buf_kv b "dual" (fun b -> buf_float b dual_us)
      | Add_replica { shard; at_us } ->
          Buffer.add_string b "add-replica";
          buf_kv b "shard" (fun b -> buf_int b shard);
          buf_kv b "at" (fun b -> buf_float b at_us)
      | Drop_replica { shard; at_us } ->
          Buffer.add_string b "drop-replica";
          buf_kv b "shard" (fun b -> buf_int b shard);
          buf_kv b "at" (fun b -> buf_float b at_us));
      Buffer.add_char b '\n')
    t.events;
  Buffer.contents b
