(** Key-level conservation check for the reshard protocol.

    Replays a seeded client stream against per-server key stores driven
    by a compiled {!Table}, modelling the background work each epoch
    boundary stands for (cutover backlog transfer, replica full-copy),
    and counts violations of the protocol's contract: across any
    sequence of reshard events no key is lost, none is left duplicated
    outside its current write-target set, and every read — including
    the dual-phase old-owner fallback — observes the last written
    value.  Deterministic: a pure function of (table, workload, ops,
    seed). *)

type result = {
  ops : int;
  puts : int;
  gets : int;
  fallback_reads : int;  (** dual-phase GETs served by the old owner *)
  transferred : int;  (** cutover + replica-add background copies *)
  lost : int;  (** reads/keys with no surviving copy *)
  duplicated : int;  (** keys left on a server outside their write set *)
  stale : int;  (** reads that observed anything but the last write *)
}

val ok : result -> bool
(** No lost, duplicated, or stale keys. *)

val check :
  ?ops:int ->
  ?seed:int ->
  ?fault:Fault.Plan.t ->
  workload:Workload.Spec.t ->
  Table.t ->
  result
(** [check ~workload table] replays [ops] (20000) operations from a
    generator seeded [seed + 303] at evenly spaced instants across the
    table's duration.  Raises [Invalid_argument] if [ops < 1].

    [?fault] overlays the plan's [kill-server]/[recover-server] windows
    on the replay: a kill wipes the server's store and marks it dead
    (writes skip it, reads fall back to the owner's live mirrors —
    {!Table.read_owner} — and background copies avoid it); a recover
    resyncs the server's current holdings from surviving copies, counted
    in [transferred].  A kill is only key-{e lossless} when every key it
    holds has a live replica or a dual-route copy elsewhere — the audit
    proves exactly that for the replicated plans the hedge bench runs.
    Raises [Invalid_argument] when a kill names a server id outside the
    table. *)
