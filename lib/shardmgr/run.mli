(** Elastic-resharding cluster run.

    One engine per server id the table ever routes to (base membership
    plus every plan-allocated id).  Each engine replays the shared
    seeded request stream thinned to the keys the table routes to it at
    the request's simulated arrival time — {!Kvcluster.Run}'s Poisson
    thinning with the static router replaced by the epoch-stamped
    {!Table} — and its offered rate follows the plan through the
    engine's pacing hook (a not-yet-added server parks at rate 0).

    Deterministic: with a fixed [(seed, table)] the result is
    bit-identical at any [MINOS_JOBS], and under a no-op plan it
    reproduces [Kvcluster.Run] (hash policy, same seed) byte for
    byte. *)

type t = {
  design_name : string;
  seed : int;
  metrics : Kvcluster.Metrics.t;
  p99_series : (float * float) list;
      (** cluster-level [(window start, p99)] across all engines *)
  shard_series : (float * float) list array;
      (** per-engine p99 series — {!Manager.decide_all}'s input *)
  mig_p99_us : float;
      (** worst window p99 inside a migration window (nan if none) *)
  steady_p99_us : float;  (** worst window p99 outside them *)
  protocol : Protocol.result;  (** key-conservation check of the table *)
}

val run :
  ?seed:int ->
  ?fault:Fault.Plan.t ->
  ?instrument:(int -> Obs.Instrument.t) ->
  ?map:((int -> Kvserver.Metrics.t * Stats.Float_vec.t * Stats.Windowed.window list) ->
       int list ->
       (Kvserver.Metrics.t * Stats.Float_vec.t * Stats.Windowed.window list) list) ->
  cfg:Kvserver.Config.t ->
  design:Kvserver.Design.t ->
  workload:Workload.Spec.t ->
  table:Table.t ->
  unit ->
  t
(** [run ~cfg ~design ~workload ~table ()] simulates every engine and
    aggregates.  [seed] (1) must match the one the table was compiled
    with (it seeds the shared request stream, per-engine config
    perturbation and the protocol check).  [fault] attaches a per-engine
    {!Fault.Inject} with decorrelated seeds — each engine is created
    with its cluster [~server] id, so the plan's
    [kill-server]/[recover-server] windows crash the matching engine's
    NIC, and the same plan overlays crashes on the key-level
    {!Protocol.check} audit; [instrument] attaches a
    flight recorder per engine; [map] substitutes a parallel map
    ({!Minos.Par.map_list}) and must preserve order and length.  Raises
    [Invalid_argument] when [cfg.duration_us] differs from the
    table's. *)
