(** Epoch-stamped routing table: a {!Plan} compiled against a concrete
    run (membership, workload, duration) into time intervals — epochs —
    with static routing inside each.

    Epoch boundaries are the protocol's state changes: drain start,
    dual-route start, each key group's staggered cutover instant,
    migration end, replica add/drop.  Within an epoch every routing
    decision is a pure function of (table, time, key), so a run under a
    fixed (seed, plan) is reproducible at any [MINOS_JOBS].

    During a membership change's dual phase, writes route to {e both}
    owners and reads prefer the new owner; a key group is served by the
    new owner alone once its cutover instant passes.  Replicas fan
    writes out to every mirror of the owning shard and spread reads
    deterministically by key hash.

    The query functions ({!routes_to}, {!rate_at}, {!next_change},
    {!epoch_at}) run inside the engines' per-request source filters:
    they are allocation-free (proved by [dune build @analyze]). *)

type t

type kind = Drain_start | Dual_start | Cutover | Replica_add | Replica_drop

(** One protocol state change, for decision logs / traces / JSON. *)
type logged = {
  kind : kind;
  at : float;
  until : float;  (** window end for [Dual_start], nan for instants *)
  server : int;  (** joining/leaving server or replica id, [-1] if n/a *)
  shard : int;  (** replicated shard, or the cutover key group *)
  epoch : int;  (** routing epoch in force at [at] *)
}

val compile :
  ?vnodes:int ->
  ?groups:int ->
  ?probe:int ->
  ?seed:int ->
  servers:int ->
  workload:Workload.Spec.t ->
  dataset:Workload.Dataset.t ->
  duration_us:float ->
  offered_mops:float ->
  Plan.t ->
  t
(** Compile a validated plan.  [vnodes] (128) sizes the consistent-hash
    ring, [groups] (8) the cutover key groups, [probe] (65536) the
    seeded probe stream that measures per-epoch shard shares and the
    per-group moving load (same stream as {!Kvcluster.Run}: seed
    [seed + 7919], so a no-op plan reproduces the static cluster shares
    bit for bit).  [servers] is the initial membership [0..servers-1];
    each [add-server] / [add-replica] event allocates the next fresh id.
    Raises [Invalid_argument] on an invalid plan or an impossible step
    (removing a non-member or the last member, dropping a replica that
    does not exist, a migration window past [duration_us]). *)

(** {2 Hot-path queries (allocation-free)} *)

val epoch_at : t -> now:float -> int

val routes_to : t -> now:float -> get:bool -> key:int -> int -> bool
(** Whether server [s] serves this request at [now]: the deterministic
    replica read target for a GET; any current write target for a PUT
    (both owners during dual-route, every replica of the owning
    shard). *)

val rate_at : t -> now:float -> int -> float
(** Server [s]'s offered rate (Mops) at [now] — [0.0] exactly when no
    probed traffic routes to it in this epoch (its engine parks). *)

val next_change : t -> now:float -> float
(** Start of the next epoch ([infinity] inside the last). *)

(** {2 Offline views (tests, {!Protocol}, reports)} *)

val n_servers : t -> int
(** Total engine count: base servers plus every plan-allocated id. *)

val base_servers : t -> int
val groups : t -> int
val offered_mops : t -> float
val dataset : t -> Workload.Dataset.t
val duration_us : t -> float
val epoch_count : t -> int
val epoch_start : t -> int -> float
val epoch_migrating : t -> int -> bool
val epoch_rates : t -> int -> float array
val group_of_key : t -> int -> int
val avg_rate : t -> int -> float
(** Time-weighted mean rate; exactly the common rate when constant
    across epochs (labels the engine's metrics). *)

val avg_share : t -> int -> float
(** Time-weighted mean traffic share; exactly the probed share when
    constant across epochs (feeds [Metrics.aggregate ~shard_share]). *)

val read_target : t -> epoch:int -> int -> int

val read_owner : t -> epoch:int -> int -> int
(** The owning primary a GET routes to before replica spread — the
    shard whose replica set ({!epoch_replicas}) serves the key.  Equals
    {!read_target} when the shard has no mirrors.  {!Protocol} uses it
    to fall back to the owner's other mirrors when the spread target is
    crashed. *)

val read_fallback : t -> epoch:int -> int -> int
(** The old-owner primary a migrating read falls back to on a store
    miss; the read target itself when the key is not mid-migration. *)

val write_targets : t -> epoch:int -> int -> int list

val cut_pending : t -> epoch:int -> int -> bool
(** The key is mid-migration with its group's cutover still ahead (the
    old owner is still authoritative); the boundary where this turns
    false is the key's backlog transfer point. *)

val epoch_replicas : t -> int -> int array array
(** A copy of the per-shard write-target sets (each includes the shard
    itself) in epoch [i]. *)

val events : t -> logged list
(** Chronological protocol state changes. *)

val migration_windows : t -> (float * float) list
(** [(start, end)] of each membership change, chronological. *)
