(* Epoch-stamped routing table: a reshard plan compiled into a sequence
   of time intervals (epochs) with static routing inside each.  Epoch
   boundaries are exactly the protocol's state changes — drain start,
   dual-route start, each key group's cutover instant, migration end,
   replica add/drop — so every routing decision is a pure function of
   (table, time, key), reproducible at any MINOS_JOBS.

   One membership change at a time (Plan.validate pins windows
   disjoint), three phases per change:

     drain      moving keys are served by the old owner only; the new
                owner's backlog for them is empty by construction
     dual       writes go to BOTH owners, reads prefer the new owner
                (with old-owner fallback at the store level, modelled in
                Protocol); key groups cut over one by one at instants
                staggered through the phase in proportion to their
                probed load, so no single instant moves all keys
     cutover    a cut group is served by the new owner alone

   Replicas are orthogonal: add-replica mirrors a shard onto a fresh
   server id (writes fan out to every replica, reads spread by key
   hash), drop-replica retires the most recent one. *)

type seg = {
  ring_old : Kvcluster.Ring.t;
  ring_new : Kvcluster.Ring.t; (* == ring_old outside a migration *)
  migrating : bool;
  dual : bool; (* dual-route phase open (for groups not yet cut) *)
  cut : bool array; (* per key group; meaningful only while migrating *)
  replicas : int array array;
      (* replicas.(s) = write targets for keys owned by [s], including
         [s] itself; a shared singleton when the shard is unreplicated *)
  rates : float array; (* per-server offered Mops inside this epoch *)
  shares : float array;
      (* per-server probed traffic share; [rates.(s) = offered *. shares.(s)],
         kept separately so shard shares reproduce Kvcluster.Run's bit for
         bit (dividing the rate back out would not) *)
}

type kind = Drain_start | Dual_start | Cutover | Replica_add | Replica_drop

type logged = {
  kind : kind;
  at : float;
  until : float; (* window end for [Dual_start], nan for instants *)
  server : int; (* joining/leaving server or replica id, -1 when n/a *)
  shard : int; (* replicated shard, or the cutover key group *)
  epoch : int; (* routing epoch in force at [at] *)
}

type t = {
  dataset : Workload.Dataset.t;
  n_keys : int;
  groups : int;
  n_servers : int; (* engine count: base servers + plan-allocated ids *)
  base_servers : int;
  duration_us : float;
  offered_mops : float;
  bounds : float array; (* bounds.(i) opens epoch i; the last runs out *)
  segs : seg array;
  events : logged list;
  windows : (float * float) list; (* migration windows, chronological *)
}

(* ---------------- hot-path routing ----------------

   Everything below [compile] runs per request inside the engines'
   source filters: no allocation, no closures, direct array reads and
   ring binary searches only (proved by `dune build @analyze`). *)

let[@inline] seg_index t now =
  (* Greatest i with bounds.(i) <= now; bounds.(0) = 0. *)
  let lo = ref 0 and hi = ref (Array.length t.bounds - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if t.bounds.(mid) <= now then lo := mid else hi := mid - 1
  done;
  !lo

(* Read-side primary: where a GET for key [k] (partition hash [h]) goes,
   before replica spread.  Reads prefer the new owner as soon as the
   dual phase opens — the old-owner fallback is a store-level concern
   (Protocol), not a routing one. *)
let get_primary seg ~groups ~n_keys h k =
  let o_new = Kvcluster.Ring.lookup seg.ring_new h in
  if not seg.migrating then o_new
  else begin
    let o_old = Kvcluster.Ring.lookup seg.ring_old h in
    if o_old = o_new then o_new
    else if seg.cut.(k * groups / n_keys) then o_new
    else if seg.dual then o_new
    else o_old
  end

(* Deterministic replica spread: a pure function of the key's partition
   hash, so the same key always reads from the same replica. *)
let[@inline] pick seg h o =
  let reps = seg.replicas.(o) in
  let n = Array.length reps in
  if n = 1 then o else reps.((h lsr 16) mod n)

let rec mem_arr a s i = i >= 0 && (a.(i) = s || mem_arr a s (i - 1))

let[@inline] rep_mem seg o s =
  let reps = seg.replicas.(o) in
  mem_arr reps s (Array.length reps - 1)

(* Write-side membership: writes go to every replica of the owning
   shard, and to BOTH owners while the key's group is in dual-route. *)
let put_member seg ~groups ~n_keys h k s =
  let o_new = Kvcluster.Ring.lookup seg.ring_new h in
  if not seg.migrating then rep_mem seg o_new s
  else begin
    let o_old = Kvcluster.Ring.lookup seg.ring_old h in
    if o_old = o_new then rep_mem seg o_new s
    else if seg.cut.(k * groups / n_keys) then rep_mem seg o_new s
    else if seg.dual then rep_mem seg o_new s || rep_mem seg o_old s
    else rep_mem seg o_old s
  end

let epoch_at t ~now = seg_index t now

let routes_to t ~now ~get ~key s =
  let seg = t.segs.(seg_index t now) in
  let h = Workload.Dataset.key_partition t.dataset key in
  if get then pick seg h (get_primary seg ~groups:t.groups ~n_keys:t.n_keys h key) = s
  else put_member seg ~groups:t.groups ~n_keys:t.n_keys h key s

let rate_at t ~now s = (t.segs.(seg_index t now)).rates.(s)

let next_change t ~now =
  let i = seg_index t now in
  if i + 1 < Array.length t.bounds then t.bounds.(i + 1) else infinity

(* ---------------- offline epoch views (tests, Protocol, JSON) ------- *)

let n_servers t = t.n_servers
let base_servers t = t.base_servers
let groups t = t.groups
let offered_mops t = t.offered_mops
let dataset t = t.dataset
let duration_us t = t.duration_us
let epoch_count t = Array.length t.segs
let epoch_start t i = t.bounds.(i)
let events t = t.events
let migration_windows t = t.windows
let group_of_key t k = k * t.groups / t.n_keys
let epoch_migrating t i = t.segs.(i).migrating

let epoch_rates t i = Array.copy t.segs.(i).rates

let read_target t ~epoch k =
  let seg = t.segs.(epoch) in
  let h = Workload.Dataset.key_partition t.dataset k in
  pick seg h (get_primary seg ~groups:t.groups ~n_keys:t.n_keys h k)

(* The owning primary before replica spread: which shard's replica set
   serves the key.  The crash-aware audit uses it to try the owner's
   other mirrors when the spread target is dead. *)
let read_owner t ~epoch k =
  let seg = t.segs.(epoch) in
  let h = Workload.Dataset.key_partition t.dataset k in
  get_primary seg ~groups:t.groups ~n_keys:t.n_keys h k

(* The old-owner primary a migrating read falls back to on a store miss;
   equals the read target when the key is not mid-migration. *)
let read_fallback t ~epoch k =
  let seg = t.segs.(epoch) in
  let h = Workload.Dataset.key_partition t.dataset k in
  if not seg.migrating then pick seg h (Kvcluster.Ring.lookup seg.ring_new h)
  else Kvcluster.Ring.lookup seg.ring_old h

(* Whether [k] is mid-migration in this epoch with its group's cutover
   still ahead: the interval during which the old owner is (or is also)
   authoritative.  The instant this turns false is the key's backlog
   transfer point (Protocol copies there). *)
let cut_pending t ~epoch k =
  let seg = t.segs.(epoch) in
  seg.migrating
  &&
  let h = Workload.Dataset.key_partition t.dataset k in
  let o_new = Kvcluster.Ring.lookup seg.ring_new h in
  let o_old = Kvcluster.Ring.lookup seg.ring_old h in
  o_old <> o_new && not seg.cut.(k * t.groups / t.n_keys)

let epoch_replicas t i = Array.map Array.copy t.segs.(i).replicas

let write_targets t ~epoch k =
  let seg = t.segs.(epoch) in
  let h = Workload.Dataset.key_partition t.dataset k in
  let acc = ref [] in
  for s = t.n_servers - 1 downto 0 do
    if put_member seg ~groups:t.groups ~n_keys:t.n_keys h k s then acc := s :: !acc
  done;
  !acc

(* [avg_rate t s] labels engine [s]'s metrics: exactly the epoch rate
   when it is constant (so a no-op plan reproduces the static cluster
   run byte for byte), the time-weighted mean otherwise. *)
let avg_rate t s =
  let r0 = t.segs.(0).rates.(s) in
  let constant = Array.for_all (fun seg -> seg.rates.(s) = r0) t.segs in
  if constant then r0
  else begin
    let m = Array.length t.bounds in
    let acc = ref 0.0 in
    for i = 0 to m - 1 do
      let e = if i + 1 < m then t.bounds.(i + 1) else t.duration_us in
      acc := !acc +. (t.segs.(i).rates.(s) *. (e -. t.bounds.(i)))
    done;
    !acc /. t.duration_us
  end

(* Same shape for the traffic share (feeds [Metrics.aggregate
   ~shard_share]): exactly the probed share when constant. *)
let avg_share t s =
  let s0 = t.segs.(0).shares.(s) in
  let constant = Array.for_all (fun seg -> seg.shares.(s) = s0) t.segs in
  if constant then s0
  else begin
    let m = Array.length t.bounds in
    let acc = ref 0.0 in
    for i = 0 to m - 1 do
      let e = if i + 1 < m then t.bounds.(i + 1) else t.duration_us in
      acc := !acc +. (t.segs.(i).shares.(s) *. (e -. t.bounds.(i)))
    done;
    !acc /. t.duration_us
  end

(* ---------------- compilation ---------------- *)

type resolved_membership = {
  m_at : float;
  m_drain_end : float;
  m_dual_end : float;
  m_before : int list;
  m_after : int list;
  m_server : int;
  m_cuts : float array; (* per-group cutover instants *)
}

type resolved =
  | Membership of resolved_membership
  | Replica of { r_at : float; r_shard : int; r_rep : int; r_add : bool }

let err msg = invalid_arg ("Shardmgr.Table.compile: " ^ msg)

let list_eq_int a b =
  List.length a = List.length b && List.for_all2 (fun x y -> x = y) a b

let compile ?(vnodes = 128) ?(groups = 8) ?(probe = 65_536) ?(seed = 1)
    ~servers ~workload ~dataset ~duration_us ~offered_mops plan =
  if servers < 1 then err "servers must be >= 1";
  if groups < 1 then err "groups must be >= 1";
  if probe < 1 then err "probe must be >= 1";
  if not (offered_mops > 0.0) then err "offered load must be > 0";
  if not (duration_us > 0.0) then err "duration must be > 0";
  (match Plan.validate plan with
  | Ok () -> ()
  | Error msg -> err ("plan " ^ plan.Plan.name ^ ": " ^ msg));
  let n_keys = Workload.Dataset.n_keys dataset in
  let probe_gen () =
    Workload.Generator.create ~seed:(seed + 7919)
      ~p_large:workload.Workload.Spec.p_large
      ~get_ratio:workload.Workload.Spec.get_ratio dataset
  in
  (* Memoized membership -> ring (few distinct memberships per plan). *)
  let ring_cache = ref [] in
  let ring_of ms =
    match List.find_opt (fun (k, _) -> list_eq_int k ms) !ring_cache with
    | Some (_, r) -> r
    | None ->
        let r = Kvcluster.Ring.of_members ~vnodes ms in
        ring_cache := (ms, r) :: !ring_cache;
        r
  in
  (* Staggered cutover schedule: group g cuts once the cumulative probed
     load of moving keys through g reaches its share of the dual phase,
     so cut instants track where the moving load actually lives. *)
  let cut_times ~before ~after ~drain_end ~dual_end =
    let rb = ring_of before and ra = ring_of after in
    let gen = probe_gen () in
    let gw = Array.make groups 0.0 in
    let total = ref 0.0 in
    for _ = 1 to probe do
      let r = Workload.Generator.next gen in
      let k = r.Workload.Generator.key_id in
      let h = Workload.Dataset.key_partition dataset k in
      if Kvcluster.Ring.lookup rb h <> Kvcluster.Ring.lookup ra h then begin
        let g = k * groups / n_keys in
        gw.(g) <- gw.(g) +. 1.0;
        total := !total +. 1.0
      end
    done;
    let dual = dual_end -. drain_end in
    let cuts = Array.make groups drain_end in
    if !total > 0.0 then begin
      let cum = ref 0.0 in
      for g = 0 to groups - 1 do
        cum := !cum +. gw.(g);
        cuts.(g) <- drain_end +. (dual *. (!cum /. !total))
      done
    end;
    cuts
  in
  (* Resolve the plan chronologically: allocate fresh server ids, track
     membership and per-shard replica stacks, reject impossible steps. *)
  let sorted =
    List.stable_sort
      (fun a b -> Float.compare (Plan.at_us a) (Plan.at_us b))
      plan.Plan.events
  in
  let members = ref (List.init servers Fun.id) in
  let reps : (int * int list) list ref = ref [] in
  let next_id = ref servers in
  let shard_reps s = match List.assoc_opt s !reps with Some l -> l | None -> [] in
  let resolved =
    List.map
      (fun ev ->
        let at = Plan.at_us ev in
        if at >= duration_us then err "event at or beyond the run duration";
        match ev with
        | Plan.Add_server { at_us; drain_us; dual_us } ->
            let id = !next_id in
            incr next_id;
            let before = !members in
            let after = before @ [ id ] in
            let m_drain_end = at_us +. drain_us in
            let m_dual_end = m_drain_end +. dual_us in
            if m_dual_end > duration_us then
              err "add-server: migration window exceeds the run duration";
            members := after;
            Membership
              {
                m_at = at_us;
                m_drain_end;
                m_dual_end;
                m_before = before;
                m_after = after;
                m_server = id;
                m_cuts = cut_times ~before ~after ~drain_end:m_drain_end
                           ~dual_end:m_dual_end;
              }
        | Plan.Remove_server { server; at_us; drain_us; dual_us } ->
            if not (List.mem server !members) then
              err "remove-server: not a current member";
            if List.length !members < 2 then
              err "remove-server: cannot remove the last member";
            if shard_reps server <> [] then
              err "remove-server: victim still has replicas (drop them first)";
            let before = !members in
            let after = List.filter (fun s -> s <> server) before in
            let m_drain_end = at_us +. drain_us in
            let m_dual_end = m_drain_end +. dual_us in
            if m_dual_end > duration_us then
              err "remove-server: migration window exceeds the run duration";
            members := after;
            Membership
              {
                m_at = at_us;
                m_drain_end;
                m_dual_end;
                m_before = before;
                m_after = after;
                m_server = server;
                m_cuts = cut_times ~before ~after ~drain_end:m_drain_end
                           ~dual_end:m_dual_end;
              }
        | Plan.Add_replica { shard; at_us } ->
            if not (List.mem shard !members) then
              err "add-replica: shard is not a current member";
            let rep = !next_id in
            incr next_id;
            reps := (shard, rep :: shard_reps shard)
                    :: List.remove_assoc shard !reps;
            Replica { r_at = at_us; r_shard = shard; r_rep = rep; r_add = true }
        | Plan.Drop_replica { shard; at_us } -> (
            match shard_reps shard with
            | [] -> err "drop-replica: shard has no replica to drop"
            | rep :: rest ->
                reps := (shard, rest) :: List.remove_assoc shard !reps;
                Replica { r_at = at_us; r_shard = shard; r_rep = rep; r_add = false }))
      sorted
  in
  let n_servers = !next_id in
  (* Epoch boundaries: every protocol state change, deduplicated. *)
  let bounds =
    let acc = ref [ 0.0 ] in
    let add x = if x > 0.0 && x < duration_us then acc := x :: !acc in
    List.iter
      (function
        | Membership m ->
            add m.m_at;
            add m.m_drain_end;
            Array.iter add m.m_cuts;
            add m.m_dual_end
        | Replica r -> add r.r_at)
      resolved;
    let l = List.sort_uniq Float.compare !acc in
    Array.of_list l
  in
  let singles = Array.init n_servers (fun s -> [| s |]) in
  (* State holding at time [b] (start of an epoch): membership, open
     migration (if [b] falls inside one), active replica stacks. *)
  let build_seg b =
    let cur = ref (List.init servers Fun.id) in
    let mig = ref None in
    let rstacks : (int * int list) list ref = ref [] in
    List.iter
      (function
        | Membership m ->
            if m.m_dual_end <= b then cur := m.m_after
            else if m.m_at <= b then mig := Some m
        | Replica r ->
            if r.r_at <= b then
              let l = match List.assoc_opt r.r_shard !rstacks with
                | Some l -> l
                | None -> []
              in
              let l' =
                if r.r_add then r.r_rep :: l
                else List.filter (fun x -> x <> r.r_rep) l
              in
              rstacks := (r.r_shard, l') :: List.remove_assoc r.r_shard !rstacks)
      resolved;
    let ring_new =
      match !mig with Some m -> ring_of m.m_after | None -> ring_of !cur
    in
    let ring_old =
      match !mig with Some m -> ring_of m.m_before | None -> ring_new
    in
    let migrating = Option.is_some !mig in
    let dual = match !mig with Some m -> b >= m.m_drain_end | None -> false in
    let cut = Array.make groups false in
    (match !mig with
    | Some m -> Array.iteri (fun g c -> cut.(g) <- b >= c) m.m_cuts
    | None -> ());
    let replicas = Array.init n_servers (fun s -> singles.(s)) in
    List.iter
      (fun (shard, l) ->
        match l with
        | [] -> ()
        | _ -> replicas.(shard) <- Array.of_list (shard :: List.rev l))
      !rstacks;
    {
      ring_old;
      ring_new;
      migrating;
      dual;
      cut;
      replicas;
      rates = [||] (* filled below, once the seg routes *);
      shares = [||];
    }
  in
  let segs = Array.map build_seg bounds in
  (* Per-epoch offered rates, by replaying the shared probe stream
     through this epoch's routing.  Mirrors Kvcluster.Run.probe_shares:
     same generator seed, same floor — so a no-op plan reproduces the
     static shares bit for bit.  A server with zero probed traffic gets
     rate exactly 0 (its engine parks), never the floor: a positive rate
     with an empty routed key set would spin the source filter forever. *)
  let floor_share = 1.0 /. float_of_int probe in
  let segs =
    Array.map
      (fun seg ->
        let counts = Array.make n_servers 0 in
        let gen = probe_gen () in
        for _ = 1 to probe do
          let r = Workload.Generator.next gen in
          let k = r.Workload.Generator.key_id in
          let h = Workload.Dataset.key_partition dataset k in
          match r.Workload.Generator.op with
          | Workload.Generator.Get | Workload.Generator.Scan ->
              let s = pick seg h (get_primary seg ~groups ~n_keys h k) in
              counts.(s) <- counts.(s) + 1
          | Workload.Generator.Put ->
              for s = 0 to n_servers - 1 do
                if put_member seg ~groups ~n_keys h k s then
                  counts.(s) <- counts.(s) + 1
              done
        done;
        let shares =
          Array.map
            (fun c ->
              if c = 0 then 0.0
              else Float.max floor_share (float_of_int c /. float_of_int probe))
            counts
        in
        let rates =
          Array.map (fun sh -> if sh = 0.0 then 0.0 else offered_mops *. sh) shares
        in
        { seg with rates; shares })
      segs
  in
  let t =
    {
      dataset;
      n_keys;
      groups;
      n_servers;
      base_servers = servers;
      duration_us;
      offered_mops;
      bounds;
      segs;
      events = [];
      windows = [];
    }
  in
  (* The observability record of the plan: one logged event per protocol
     state change, epoch-stamped. *)
  let events =
    List.concat_map
      (function
        | Membership m ->
            let nan = Float.nan in
            Array.to_list
              (Array.mapi
                 (fun g c ->
                   {
                     kind = Cutover;
                     at = c;
                     until = nan;
                     server = m.m_server;
                     shard = g;
                     epoch = epoch_at t ~now:c;
                   })
                 m.m_cuts)
            @ [
                {
                  kind = Drain_start;
                  at = m.m_at;
                  until = nan;
                  server = m.m_server;
                  shard = -1;
                  epoch = epoch_at t ~now:m.m_at;
                };
                {
                  kind = Dual_start;
                  at = m.m_drain_end;
                  until = m.m_dual_end;
                  server = m.m_server;
                  shard = -1;
                  epoch = epoch_at t ~now:m.m_drain_end;
                };
              ]
        | Replica r ->
            [
              {
                kind = (if r.r_add then Replica_add else Replica_drop);
                at = r.r_at;
                until = Float.nan;
                server = r.r_rep;
                shard = r.r_shard;
                epoch = epoch_at t ~now:r.r_at;
              };
            ])
      resolved
    |> List.stable_sort (fun a b -> Float.compare a.at b.at)
  in
  let windows =
    List.filter_map
      (function
        | Membership m -> Some (m.m_at, m.m_dual_end)
        | Replica _ -> None)
      resolved
  in
  { t with events; windows }
