(** Shard-manager control loop (DynamicCache's add/drop-replica
    algorithm): replicate a shard that runs hot for [k_up] consecutive
    latency windows, retire its most recent replica after [k_down] cold
    ones, with a cooldown after every decision so the manager cannot
    flap.

    {!decide} is a pure fold over a recorded per-window p99 series, so
    managed runs stay deterministic: a first membership-only pass
    records the series, {!decide_all} turns them into timed replica
    events, and the run is replayed with those events appended to the
    plan ({!Minos.Reshard} with a manager config). *)

type cfg = {
  hi_p99_us : float;  (** replicate when the window p99 exceeds this *)
  lo_p99_us : float;  (** retire a replica when it stays below this *)
  k_up : int;  (** consecutive hot windows before add-replica *)
  k_down : int;  (** consecutive cold windows before drop-replica *)
  cooldown_us : float;  (** freeze a shard's counters after a decision *)
  max_replicas : int;  (** replicas per shard, beyond the primary *)
}

val default : cfg
(** 50 µs hot / 10 µs cold, 2 up / 3 down, 20 ms cooldown, 1 replica. *)

val validate : cfg -> (unit, string) result

val decide : cfg -> shard:int -> window_us:float -> (float * float) list -> Plan.event list
(** [decide c ~shard ~window_us series] folds one shard's
    [(window_start, p99)] series (time order) into timed
    [Add_replica] / [Drop_replica] events, each stamped at the end of
    the deciding window.  NaN windows (no samples) are skipped.  Raises
    [Invalid_argument] when the config fails {!validate}. *)

val decide_all : cfg -> window_us:float -> (float * float) list array -> Plan.event list
(** {!decide} over every base shard ([series.(s)] is shard [s]'s); the
    result is ready to append to the plan's events before a second
    {!Table.compile}. *)
