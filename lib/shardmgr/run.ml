(* Elastic-resharding run: one engine per server id the table ever
   routes to (base membership plus every plan-allocated id), each
   replaying the shared seeded request stream thinned to the keys the
   table routes to it *at the request's simulated arrival time*, at the
   epoch rate the compile-time probe measured.

   This is Kvcluster.Run's Poisson-thinning construction with the static
   router replaced by the epoch-stamped table, plus a pacing hook so an
   engine's offered rate follows the plan: a not-yet-added server parks
   at rate 0, a removed one parks after its migration ends.  Everything
   an engine draws is a pure function of (seed, table, server id), so
   the run is reproducible at any MINOS_JOBS. *)

type t = {
  design_name : string;
  seed : int;
  metrics : Kvcluster.Metrics.t;
  p99_series : (float * float) list;
      (* cluster-level per-window p99: union of every engine's window
         samples, merged by window start *)
  shard_series : (float * float) list array;
      (* per-engine per-window p99 (the manager's input) *)
  mig_p99_us : float; (* worst window p99 inside a migration window *)
  steady_p99_us : float; (* worst window p99 outside them *)
  protocol : Protocol.result;
}

(* Merge per-engine windows into cluster-level ones.  Window starts are
   exact multiples of the shared width, so grouping by float equality is
   exact; engines are visited in index order, keeping the merged sample
   order independent of MINOS_JOBS. *)
let merge_windows per_engine =
  let all =
    List.concat_map
      (fun ws ->
        List.map (fun w -> (w.Stats.Windowed.start_time, w.samples)) ws)
      (Array.to_list per_engine)
  in
  let sorted =
    List.stable_sort (fun (a, _) (b, _) -> Float.compare a b) all
  in
  let rec group = function
    | [] -> []
    | (st, v) :: rest ->
        let merged = Stats.Float_vec.create () in
        Stats.Float_vec.append merged v;
        let rec take = function
          | (st', v') :: rest' when Float.compare st st' = 0 ->
              Stats.Float_vec.append merged v';
              take rest'
          | rest' -> rest'
        in
        let rest = take rest in
        (st, merged) :: group rest
  in
  group sorted

let p99_of_windows ws =
  List.filter_map
    (fun (st, v) ->
      if Stats.Float_vec.length v = 0 then None
      else Some (st, Stats.Quantile.of_vec v 0.99))
    ws

(* Worst window p99 inside / outside the table's migration windows. *)
let split_p99 ~width ~migrations series =
  let in_migration st =
    List.exists (fun (a, b) -> st < b && st +. width > a) migrations
  in
  let mig = ref Float.nan and steady = ref Float.nan in
  List.iter
    (fun (st, p) ->
      let slot = if in_migration st then mig else steady in
      if not (!slot >= p) then slot := p)
    series;
  (!mig, !steady)

let run ?(seed = 1) ?fault ?instrument ?(map = fun f xs -> List.map f xs) ~cfg
    ~design ~workload ~table () =
  let n = Table.n_servers table in
  if cfg.Kvserver.Config.duration_us <> Table.duration_us table then
    invalid_arg "Shardmgr.Run.run: cfg duration differs from the table's";
  let dataset = Table.dataset table in
  let shard_job s =
    let gen =
      Workload.Generator.create ~seed:(seed + 101)
        ~p_large:workload.Workload.Spec.p_large
        ~get_ratio:workload.Workload.Spec.get_ratio dataset
    in
    (* Thin the shared stream down to what the table routes to [s] at
       the request's arrival time.  The engine's clock is only known
       after [create]; the filter reads it through a reference. *)
    let sim_now = ref (fun () -> 0.0) in
    let rec source () =
      let r = Workload.Generator.next gen in
      let now = !sim_now () in
      if
        Table.routes_to table ~now
          ~get:(r.Workload.Generator.op = Workload.Generator.Get)
          ~key:r.Workload.Generator.key_id s
      then r
      else source ()
    in
    let pacing =
      {
        Kvserver.Engine.rate_at = (fun now -> Table.rate_at table ~now s);
        next_change = (fun now -> Table.next_change table ~now);
      }
    in
    let cfg_s = { cfg with Kvserver.Config.seed = cfg.Kvserver.Config.seed + seed + (97 * s) } in
    let obs = match instrument with None -> None | Some f -> Some (f s) in
    let fault_inj =
      match fault with
      | None -> None
      | Some plan -> Some (Fault.Inject.create ~seed:(seed + (1013 * s)) plan)
    in
    (* The label only feeds the metrics' offered-load fields (pacing
       drives the actual gaps); a never-routed server gets an epsilon to
       satisfy create's positivity check. *)
    let label = Float.max 1e-9 (Table.avg_rate table s) in
    let eng =
      Kvserver.Engine.create ~source ~pacing ?obs ?fault:fault_inj ~server:s
        cfg_s gen ~offered_mops:label
    in
    sim_now := (fun () -> Dsim.Sim.now (Kvserver.Engine.sim eng));
    let m = Kvserver.Engine.run eng (Kvserver.Design.make design) in
    let windows =
      match Kvserver.Engine.windowed eng with
      | None -> []
      | Some w -> Stats.Windowed.windows w
    in
    (m, Kvserver.Engine.raw_latencies eng, windows)
  in
  let results = Array.of_list (map shard_job (List.init n Fun.id)) in
  if Array.length results <> n then
    invalid_arg "Shardmgr.Run.run: map must preserve length";
  let shard_share = Array.init n (fun s -> Table.avg_share table s) in
  let metrics =
    Kvcluster.Metrics.aggregate ~shard_share
      (Array.map (fun (m, v, _) -> (m, v)) results)
  in
  let per_engine = Array.map (fun (_, _, w) -> w) results in
  let p99_series = p99_of_windows (merge_windows per_engine) in
  let shard_series =
    Array.map
      (fun ws ->
        p99_of_windows
          (List.map (fun w -> (w.Stats.Windowed.start_time, w.samples)) ws))
      per_engine
  in
  let mig_p99_us, steady_p99_us =
    match cfg.Kvserver.Config.window_us with
    | None -> (Float.nan, Float.nan)
    | Some width ->
        split_p99 ~width ~migrations:(Table.migration_windows table) p99_series
  in
  let protocol = Protocol.check ~seed ?fault ~workload table in
  {
    design_name = Kvserver.Design.name design;
    seed;
    metrics;
    p99_series;
    shard_series;
    mig_p99_us;
    steady_p99_us;
    protocol;
  }
