(** Reshard plans: timed elastic-reconfiguration events.

    The textual format follows {!Fault.Plan}: one [keyword key=value ...]
    event per line, ['#'] comments, an optional [plan NAME] header.
    Times are microseconds of simulated time.

    {v
    plan add-remove
    add-server at=55000 drain=5000 dual=20000
    remove-server server=1 at=90000 drain=3000 dual=15000
    add-replica shard=0 at=60000
    drop-replica shard=0 at=100000
    v}

    A membership change ([add-server] / [remove-server]) owns a
    three-phase migration window starting at [at]: [drain] µs during
    which moving keys are still served by their old owner only, then
    [dual] µs of dual-routing (writes to both owners, reads prefer the
    new owner), with each key group cutting over at a staggered instant
    inside the dual phase, after which the new owner serves alone.
    [drain] defaults to 2000, [dual] to 10000.  Replica events are
    instants: [add-replica] mirrors shard [shard] onto a fresh server,
    [drop-replica] retires that shard's most recent replica. *)

type event =
  | Add_server of { at_us : float; drain_us : float; dual_us : float }
      (** a fresh server (next unused id) joins the ring at [at_us] *)
  | Remove_server of {
      server : int;
      at_us : float;
      drain_us : float;
      dual_us : float;
    }
  | Add_replica of { shard : int; at_us : float }
  | Drop_replica of { shard : int; at_us : float }

type t = { name : string; events : event list }

val empty : t
(** The no-op plan: a run under it is byte-identical to a static-ring
    cluster run (pinned by test/test_shardmgr.ml). *)

val at_us : event -> float

val window : event -> (float * float) option
(** The [(start, end)] migration window of a membership event
    ([end = at + drain + dual]); [None] for replica instants. *)

val validate : t -> (unit, string) result
(** Event fields well-formed and migration windows pairwise disjoint
    (the routing table handles one membership change at a time). *)

val canned_names : string list

val canned : string -> warmup_us:float -> duration_us:float -> t option
(** Built-in scenarios with event times placed as fractions of the
    measurement window: ["noop"], ["add-remove"] (a server joins early,
    server 1 leaves later), ["replica-cycle"]. *)

val of_string : ?name:string -> string -> (t, string) result
val of_file : string -> (t, string) result

val to_string : t -> string
(** Round-trips through {!of_string}. *)
