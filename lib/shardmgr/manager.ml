(* Shard-manager control loop, after DynamicCache's add/drop-replica
   algorithm: sample each shard's per-window p99, replicate a shard
   once it has run hot for [k_up] consecutive windows, retire its most
   recent replica after [k_down] consecutive cold windows, and refuse to
   flap — every decision starts a cooldown during which the shard's
   counters are frozen.

   [decide] is a pure fold over a recorded p99 series, so the manager is
   deterministic by construction: the integration runs a first
   membership-only pass, feeds the per-shard series through [decide],
   and replays the run with the emitted replica events appended to the
   plan (two honest passes instead of a mid-run feedback loop the DES
   could not reproduce across job counts). *)

type cfg = {
  hi_p99_us : float; (* replicate when the window p99 exceeds this *)
  lo_p99_us : float; (* retire a replica when it stays below this *)
  k_up : int; (* consecutive hot windows before add-replica *)
  k_down : int; (* consecutive cold windows before drop-replica *)
  cooldown_us : float; (* freeze after any decision *)
  max_replicas : int; (* replicas per shard, beyond the primary *)
}

let default =
  {
    hi_p99_us = 50.0;
    lo_p99_us = 10.0;
    k_up = 2;
    k_down = 3;
    cooldown_us = 20_000.0;
    max_replicas = 1;
  }

let validate c =
  if not (c.hi_p99_us > 0.0 && Float.is_finite c.hi_p99_us) then
    Error "hi_p99_us must be finite and > 0"
  else if not (c.lo_p99_us >= 0.0 && c.lo_p99_us < c.hi_p99_us) then
    Error "lo_p99_us must be in [0, hi_p99_us)"
  else if c.k_up < 1 || c.k_down < 1 then Error "k_up/k_down must be >= 1"
  else if not (c.cooldown_us >= 0.0) then Error "cooldown_us must be >= 0"
  else if c.max_replicas < 0 then Error "max_replicas must be >= 0"
  else Ok ()

(* Decisions for one shard from its windowed p99 series
   [(window_start, p99); ...] in time order.  Events are stamped at the
   end of the deciding window — the first instant the full window's
   statistics exist. *)
let decide c ~shard ~window_us series =
  (match validate c with
  | Ok () -> ()
  | Error m -> invalid_arg ("Shardmgr.Manager.decide: " ^ m));
  let events = ref [] in
  let hot = ref 0 and cold = ref 0 in
  let replicas = ref 0 in
  let cooldown_until = ref neg_infinity in
  List.iter
    (fun (start, p99) ->
      let at = start +. window_us in
      if at > !cooldown_until && Float.is_finite p99 then begin
        if p99 > c.hi_p99_us then begin
          cold := 0;
          incr hot;
          if !hot >= c.k_up && !replicas < c.max_replicas then begin
            events := Plan.Add_replica { shard; at_us = at } :: !events;
            incr replicas;
            hot := 0;
            cooldown_until := at +. c.cooldown_us
          end
        end
        else if p99 < c.lo_p99_us then begin
          hot := 0;
          incr cold;
          if !cold >= c.k_down && !replicas > 0 then begin
            events := Plan.Drop_replica { shard; at_us = at } :: !events;
            decr replicas;
            cold := 0;
            cooldown_until := at +. c.cooldown_us
          end
        end
        else begin
          hot := 0;
          cold := 0
        end
      end)
    series;
  List.rev !events

(* Decisions across all base shards of a pass-1 run; [series.(s)] is
   shard [s]'s p99 series.  Events keep shard order then time order —
   Table.compile re-sorts by time and allocates replica ids
   deterministically. *)
let decide_all c ~window_us series =
  let acc = ref [] in
  Array.iteri
    (fun shard s -> acc := !acc @ decide c ~shard ~window_us s)
    series;
  !acc
