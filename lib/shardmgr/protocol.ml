(* Key-level conservation model of the drain -> dual-route -> cutover
   protocol: replay a seeded client stream against per-server key/value
   maps driven by a compiled routing table, with the background
   transfers a real system performs — at each key group's cutover
   instant the old owner's backlog is copied to the new owner (dual
   writes already put fresh values there) and the old copy retired; a
   freshly added replica receives a full copy of its shard.

   Every write stamps a monotone sequence number, so the checker can
   assert the tentpole's contract exactly: across any sequence of
   reshard events, no key is lost, none is duplicated outside its
   current write-target set, and every read (including the dual-phase
   old-owner fallback) observes the last written value.

   With [?fault], kill-server/recover-server windows overlay crashes on
   the replay: a kill wipes the server's store (in-memory data dies with
   the process) and marks it dead — writes skip it, reads fall back to
   the owner's surviving mirrors, epoch background copies avoid it — and
   a recover resyncs its current holdings from live copies (counted in
   [transferred]) before it serves again. *)

type result = {
  ops : int;
  puts : int;
  gets : int;
  fallback_reads : int; (* dual-phase GETs served by the old owner *)
  transferred : int; (* cutover + replica-add background copies *)
  lost : int; (* reads/keys with no surviving copy *)
  duplicated : int; (* keys left on a server outside their write set *)
  stale : int; (* reads that observed anything but the last write *)
}

let ok r = r.lost = 0 && r.duplicated = 0 && r.stale = 0

let check ?(ops = 20_000) ?(seed = 1) ?fault ~workload table =
  if ops < 1 then invalid_arg "Shardmgr.Protocol.check: ops must be >= 1";
  let n = Table.n_servers table in
  let dataset = Table.dataset table in
  let duration = Table.duration_us table in
  let epochs = Table.epoch_count table in
  let stores = Array.init n (fun _ -> Hashtbl.create 1024) in
  let written = Hashtbl.create 1024 in
  let dead = Array.make n false in
  (* Kill/recover instants from the fault plan, chronological.  The
     injector already pairs each kill with its earliest matching
     recover; a [Plan.all] wildcard expands to every server here. *)
  let fault_events =
    match fault with
    | None -> [||]
    | Some plan ->
        let inj = Fault.Inject.create ~seed:(seed + 911) plan in
        let evs = ref [] in
        List.iter
          (fun (s, kill_us, recover_us) ->
            if s >= n then
              invalid_arg "Shardmgr.Protocol.check: kill-server id out of range";
            let add s =
              evs := (kill_us, 0, s) :: !evs;
              if Float.is_finite recover_us then
                evs := (recover_us, 1, s) :: !evs
            in
            if s = Fault.Plan.all then
              for s = 0 to n - 1 do add s done
            else add s)
          (Fault.Inject.dead_windows inj);
        let a = Array.of_list !evs in
        Array.sort
          (fun (t1, k1, s1) (t2, k2, s2) ->
            let c = Float.compare t1 t2 in
            if c <> 0 then c
            else
              let c = Int.compare k1 k2 in
              if c <> 0 then c else Int.compare s1 s2)
          a;
        a
  in
  let gen =
    Workload.Generator.create ~seed:(seed + 303)
      ~p_large:workload.Workload.Spec.p_large
      ~get_ratio:workload.Workload.Spec.get_ratio dataset
  in
  let puts = ref 0 and gets = ref 0 in
  let fallback_reads = ref 0 and transferred = ref 0 in
  let lost = ref 0 and duplicated = ref 0 and stale = ref 0 in
  let seq = ref 0 in
  let holds s k = Hashtbl.mem stores.(s) k in
  (* Entering epoch [e]: perform the background work the boundary
     stands for. *)
  let enter_epoch e =
    (* Replica churn: a gained mirror receives a full copy of its
       shard's holdings; a dropped one leaves service and clears. *)
    let prev = Table.epoch_replicas table (e - 1) in
    let cur = Table.epoch_replicas table e in
    for o = 0 to n - 1 do
      let was r = Array.exists (fun x -> x = r) prev.(o) in
      Array.iter
        (fun r ->
          if r <> o && not (was r) && not dead.(r) then
            Hashtbl.iter
              (fun k v ->
                if List.mem o (Table.write_targets table ~epoch:e k) then begin
                  Hashtbl.replace stores.(r) k v;
                  incr transferred
                end)
              stores.(o))
        cur.(o);
      Array.iter
        (fun r ->
          if r <> o && not (Array.exists (fun x -> x = r) cur.(o)) then
            Hashtbl.reset stores.(r))
        prev.(o)
    done;
    (* Cutovers: keys whose group just cut move their backlog to the
       new write set; copies outside the new set are retired. *)
    Hashtbl.iter
      (fun k _ ->
        if Table.cut_pending table ~epoch:(e - 1) k
           && not (Table.cut_pending table ~epoch:e k)
        then begin
          let wt = Table.write_targets table ~epoch:e k in
          let src = Table.read_fallback table ~epoch:(e - 1) k in
          let v =
            match Hashtbl.find_opt stores.(src) k with
            | Some v -> Some v
            | None ->
                (* the old owner may already be gone from a previous
                   event; any surviving copy is a valid source *)
                let found = ref None in
                for s = 0 to n - 1 do
                  match Hashtbl.find_opt stores.(s) k with
                  | Some v when !found = None -> found := Some v
                  | _ -> ()
                done;
                !found
          in
          (match v with
          | None -> incr lost (* a written key with no surviving copy *)
          | Some v ->
              List.iter
                (fun s ->
                  if not (holds s k) && not dead.(s) then begin
                    Hashtbl.replace stores.(s) k v;
                    incr transferred
                  end)
                wt);
          for s = 0 to n - 1 do
            if holds s k && not (List.mem s wt) then Hashtbl.remove stores.(s) k
          done
        end)
      written
  in
  let epoch = ref 0 in
  (* A crash loses the server's in-memory store whole; a restart resyncs
     every key the routing currently assigns it from a surviving live
     copy before the server serves again (the copies count in
     [transferred], same as the planned background transfers). *)
  let kill_server s =
    Hashtbl.reset stores.(s);
    dead.(s) <- true
  in
  let recover_server s =
    dead.(s) <- false;
    Hashtbl.iter
      (fun k _ ->
        if
          List.mem s (Table.write_targets table ~epoch:!epoch k)
          && not (holds s k)
        then begin
          let found = ref None in
          for src = 0 to n - 1 do
            if not dead.(src) then
              match Hashtbl.find_opt stores.(src) k with
              | Some v when !found = None -> found := Some v
              | _ -> ()
          done;
          match !found with
          | Some v ->
              Hashtbl.replace stores.(s) k v;
              incr transferred
          | None -> ()
        end)
      written
  in
  (* Replay epoch boundaries and kill/recover instants in time order —
     a recover's resync must see the epoch routing in force at that
     moment. *)
  let fidx = ref 0 in
  let advance_to time =
    let continue = ref true in
    while !continue do
      let te =
        if !epoch + 1 < epochs then Table.epoch_start table (!epoch + 1)
        else infinity
      in
      let tf =
        if !fidx < Array.length fault_events then
          let t, _, _ = fault_events.(!fidx) in
          t
        else infinity
      in
      if te <= tf && te <= time then begin
        incr epoch;
        enter_epoch !epoch
      end
      else if tf <= time then begin
        let _, op, s = fault_events.(!fidx) in
        incr fidx;
        if op = 0 then kill_server s else recover_server s
      end
      else continue := false
    done
  in
  (* The GET target with crash fallback: when the spread replica is
     dead, the first live mirror of the owning shard serves instead;
     [-1] when the whole replica set is down (the caller then tries the
     migration fallback before declaring the read lost). *)
  let live_read_target ~epoch k =
    let tgt = Table.read_target table ~epoch k in
    if not dead.(tgt) then tgt
    else begin
      let owner = Table.read_owner table ~epoch k in
      let reps = (Table.epoch_replicas table epoch).(owner) in
      let alt = ref (-1) in
      Array.iter (fun s -> if not dead.(s) && !alt = -1 then alt := s) reps;
      !alt
    end
  in
  for i = 1 to ops do
    let time = duration *. float_of_int i /. float_of_int (ops + 1) in
    advance_to time;
    let r = Workload.Generator.next gen in
    let k = r.Workload.Generator.key_id in
    match r.Workload.Generator.op with
    | Workload.Generator.Put ->
        incr puts;
        incr seq;
        Hashtbl.replace written k !seq;
        List.iter
          (fun s -> if not dead.(s) then Hashtbl.replace stores.(s) k !seq)
          (Table.write_targets table ~epoch:!epoch k)
    (* SCANs route like GETs: audit their start key as a point read. *)
    | Workload.Generator.Get | Workload.Generator.Scan -> (
        incr gets;
        let expect = Hashtbl.find_opt written k in
        let tgt = live_read_target ~epoch:!epoch k in
        let v = if tgt = -1 then None else Hashtbl.find_opt stores.(tgt) k in
        match v with
        | Some v -> if expect <> Some v then incr stale
        | None -> (
            let fb = Table.read_fallback table ~epoch:!epoch k in
            if dead.(fb) then begin
              if expect <> None then incr lost
            end
            else
              match Hashtbl.find_opt stores.(fb) k with
              | Some v ->
                  if fb <> tgt then incr fallback_reads;
                  if expect <> Some v then incr stale
              | None -> if expect <> None then incr lost))
  done;
  advance_to duration;
  (* Final audit: every written key readable with its last value on the
     final routing, and resident only inside its final write set. *)
  let final = epochs - 1 in
  Hashtbl.iter
    (fun k v ->
      let tgt = live_read_target ~epoch:final k in
      (match (if tgt = -1 then None else Hashtbl.find_opt stores.(tgt) k) with
      | Some got -> if got <> v then incr stale
      | None -> (
          let fb = Table.read_fallback table ~epoch:final k in
          if dead.(fb) then incr lost
          else
            match Hashtbl.find_opt stores.(fb) k with
            | Some got -> if got <> v then incr stale
            | None -> incr lost));
      let wt = Table.write_targets table ~epoch:final k in
      let extra = ref false in
      for s = 0 to n - 1 do
        if holds s k && not (List.mem s wt) then extra := true
      done;
      if !extra then incr duplicated)
    written;
  {
    ops;
    puts = !puts;
    gets = !gets;
    fallback_reads = !fallback_reads;
    transferred = !transferred;
    lost = !lost;
    duplicated = !duplicated;
    stale = !stale;
  }
