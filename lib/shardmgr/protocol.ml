(* Key-level conservation model of the drain -> dual-route -> cutover
   protocol: replay a seeded client stream against per-server key/value
   maps driven by a compiled routing table, with the background
   transfers a real system performs — at each key group's cutover
   instant the old owner's backlog is copied to the new owner (dual
   writes already put fresh values there) and the old copy retired; a
   freshly added replica receives a full copy of its shard.

   Every write stamps a monotone sequence number, so the checker can
   assert the tentpole's contract exactly: across any sequence of
   reshard events, no key is lost, none is duplicated outside its
   current write-target set, and every read (including the dual-phase
   old-owner fallback) observes the last written value. *)

type result = {
  ops : int;
  puts : int;
  gets : int;
  fallback_reads : int; (* dual-phase GETs served by the old owner *)
  transferred : int; (* cutover + replica-add background copies *)
  lost : int; (* reads/keys with no surviving copy *)
  duplicated : int; (* keys left on a server outside their write set *)
  stale : int; (* reads that observed anything but the last write *)
}

let ok r = r.lost = 0 && r.duplicated = 0 && r.stale = 0

let check ?(ops = 20_000) ?(seed = 1) ~workload table =
  if ops < 1 then invalid_arg "Shardmgr.Protocol.check: ops must be >= 1";
  let n = Table.n_servers table in
  let dataset = Table.dataset table in
  let duration = Table.duration_us table in
  let epochs = Table.epoch_count table in
  let stores = Array.init n (fun _ -> Hashtbl.create 1024) in
  let written = Hashtbl.create 1024 in
  let gen =
    Workload.Generator.create ~seed:(seed + 303)
      ~p_large:workload.Workload.Spec.p_large
      ~get_ratio:workload.Workload.Spec.get_ratio dataset
  in
  let puts = ref 0 and gets = ref 0 in
  let fallback_reads = ref 0 and transferred = ref 0 in
  let lost = ref 0 and duplicated = ref 0 and stale = ref 0 in
  let seq = ref 0 in
  let holds s k = Hashtbl.mem stores.(s) k in
  (* Entering epoch [e]: perform the background work the boundary
     stands for. *)
  let enter_epoch e =
    (* Replica churn: a gained mirror receives a full copy of its
       shard's holdings; a dropped one leaves service and clears. *)
    let prev = Table.epoch_replicas table (e - 1) in
    let cur = Table.epoch_replicas table e in
    for o = 0 to n - 1 do
      let was r = Array.exists (fun x -> x = r) prev.(o) in
      Array.iter
        (fun r ->
          if r <> o && not (was r) then
            Hashtbl.iter
              (fun k v ->
                if List.mem o (Table.write_targets table ~epoch:e k) then begin
                  Hashtbl.replace stores.(r) k v;
                  incr transferred
                end)
              stores.(o))
        cur.(o);
      Array.iter
        (fun r ->
          if r <> o && not (Array.exists (fun x -> x = r) cur.(o)) then
            Hashtbl.reset stores.(r))
        prev.(o)
    done;
    (* Cutovers: keys whose group just cut move their backlog to the
       new write set; copies outside the new set are retired. *)
    Hashtbl.iter
      (fun k _ ->
        if Table.cut_pending table ~epoch:(e - 1) k
           && not (Table.cut_pending table ~epoch:e k)
        then begin
          let wt = Table.write_targets table ~epoch:e k in
          let src = Table.read_fallback table ~epoch:(e - 1) k in
          let v =
            match Hashtbl.find_opt stores.(src) k with
            | Some v -> Some v
            | None ->
                (* the old owner may already be gone from a previous
                   event; any surviving copy is a valid source *)
                let found = ref None in
                for s = 0 to n - 1 do
                  match Hashtbl.find_opt stores.(s) k with
                  | Some v when !found = None -> found := Some v
                  | _ -> ()
                done;
                !found
          in
          (match v with
          | None -> incr lost (* a written key with no surviving copy *)
          | Some v ->
              List.iter
                (fun s ->
                  if not (holds s k) then begin
                    Hashtbl.replace stores.(s) k v;
                    incr transferred
                  end)
                wt);
          for s = 0 to n - 1 do
            if holds s k && not (List.mem s wt) then Hashtbl.remove stores.(s) k
          done
        end)
      written
  in
  let epoch = ref 0 in
  let advance_to time =
    while
      !epoch + 1 < epochs && Table.epoch_start table (!epoch + 1) <= time
    do
      incr epoch;
      enter_epoch !epoch
    done
  in
  for i = 1 to ops do
    let time = duration *. float_of_int i /. float_of_int (ops + 1) in
    advance_to time;
    let r = Workload.Generator.next gen in
    let k = r.Workload.Generator.key_id in
    match r.Workload.Generator.op with
    | Workload.Generator.Put ->
        incr puts;
        incr seq;
        Hashtbl.replace written k !seq;
        List.iter
          (fun s -> Hashtbl.replace stores.(s) k !seq)
          (Table.write_targets table ~epoch:!epoch k)
    | Workload.Generator.Get -> (
        incr gets;
        let expect = Hashtbl.find_opt written k in
        let tgt = Table.read_target table ~epoch:!epoch k in
        match Hashtbl.find_opt stores.(tgt) k with
        | Some v -> if expect <> Some v then incr stale
        | None -> (
            let fb = Table.read_fallback table ~epoch:!epoch k in
            match Hashtbl.find_opt stores.(fb) k with
            | Some v ->
                if fb <> tgt then incr fallback_reads;
                if expect <> Some v then incr stale
            | None -> if expect <> None then incr lost))
  done;
  advance_to duration;
  (* Final audit: every written key readable with its last value on the
     final routing, and resident only inside its final write set. *)
  let final = epochs - 1 in
  Hashtbl.iter
    (fun k v ->
      let tgt = Table.read_target table ~epoch:final k in
      (match Hashtbl.find_opt stores.(tgt) k with
      | Some got -> if got <> v then incr stale
      | None -> (
          match Hashtbl.find_opt stores.(Table.read_fallback table ~epoch:final k) k with
          | Some got -> if got <> v then incr stale
          | None -> incr lost));
      let wt = Table.write_targets table ~epoch:final k in
      let extra = ref false in
      for s = 0 to n - 1 do
        if holds s k && not (List.mem s wt) then extra := true
      done;
      if !extra then incr duplicated)
    written;
  {
    ops;
    puts = !puts;
    gets = !gets;
    fallback_reads = !fallback_reads;
    transferred = !transferred;
    lost = !lost;
    duplicated = !duplicated;
    stale = !stale;
  }
