(** Closed-form capacity and bottleneck analysis of the simulated server.

    These are the back-of-the-envelope computations a systems designer
    would do before running anything: expected bytes and CPU per
    operation, NIC-bound and CPU-bound throughput ceilings per design, and
    the head-of-line exposure of keyhash sharding.  The test suite checks
    the discrete-event simulator against them, and EXPERIMENTS.md uses
    them to explain where each design saturates. *)

type op_profile = {
  mean_cpu_us : float;        (** CPU per operation (request mix average) *)
  mean_tx_bytes : float;      (** wire bytes transmitted per operation *)
  mean_rx_bytes : float;      (** wire bytes received per operation *)
  mean_service_latency_us : float;
      (** no-load response time: pipeline + CPU + reply wire time *)
}

val profile : Workload.Spec.t -> Kvserver.Cost_model.t -> op_profile
(** Expectations under the spec's size distribution and GET:PUT mix
    (replies always sent, i.e. sampling = 1). *)

val nic_bound_mops : Workload.Spec.t -> Kvserver.Cost_model.t -> gbps:float -> float
(** Throughput at which the TX line saturates. *)

val cpu_bound_mops :
  Workload.Spec.t -> Kvserver.Cost_model.t -> cores:int -> ?overhead_us:float -> unit -> float
(** Throughput at which [cores] saturate, with [overhead_us] extra CPU per
    operation (profiling, polling...). *)

val minos_small_pool_bound_mops :
  Workload.Spec.t -> Kvserver.Cost_model.t -> cores:int -> n_small:int -> float
(** Minos-specific ceiling: the small pool must absorb ~99 % of requests
    plus profiling; usually the binding CPU constraint for Minos. *)

val predicted_peak_mops :
  Workload.Spec.t -> Kvserver.Cost_model.t -> cores:int -> gbps:float -> float
(** min(NIC bound, CPU bound): where the throughput curves flatten. *)

val hol_exposure :
  Workload.Spec.t -> Kvserver.Cost_model.t -> cores:int -> offered_mops:float -> float
(** For keyhash sharding: the probability that an arriving request finds a
    large request in service (or queued) on its own core — the fraction of
    requests whose latency is polluted by head-of-line blocking.  When
    this exceeds 1 %, the 99th percentile reflects large-request service
    times; the paper's §2.2 point in one number. *)

val expected_large_cores :
  Workload.Spec.t -> Kvserver.Cost_model.t -> cores:int -> percentile:float -> int
(** The n_large the control loop should converge to under the paper's
    packets cost function: cores minus the ceiling of the small cost
    share.  (0 means standby mode.) *)
