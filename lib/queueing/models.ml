type discipline = Per_core_queues | Single_queue | Work_stealing

let discipline_name = function
  | Per_core_queues -> "nxM/G/1"
  | Single_queue -> "M/G/n"
  | Work_stealing -> "nxM/G/1+WS"

type config = {
  cores : int;
  load : float;
  p_large : float;
  k : float;
  requests : int;
  warmup_fraction : float;
  seed : int;
}

let default_config =
  {
    cores = 8;
    load = 0.5;
    p_large = 0.00125;
    k = 100.0;
    requests = 200_000;
    warmup_fraction = 0.1;
    seed = 1;
  }

type result = {
  mean : float;
  p50 : float;
  p99 : float;
  throughput : float;
  completed : int;
}

type job = { arrival : float; service : float; index : int }

let dummy_job = { arrival = 0.0; service = 0.0; index = -1 }

type core = { mutable busy : bool; queue : job Netsim.Fifo.t }

type state = {
  sim : Dsim.Sim.t;
  cfg : config;
  cores : core array;
  shared : job Netsim.Fifo.t; (* Single_queue only *)
  latencies : Stats.Float_vec.t;
  mutable completed_measured : int;
  mutable first_measured_completion : float;
  mutable last_measured_completion : float;
  rng : Dsim.Rng.t;
}

let record st job =
  let warmup = int_of_float (st.cfg.warmup_fraction *. float_of_int st.cfg.requests) in
  if job.index >= warmup then begin
    let now = Dsim.Sim.now st.sim in
    Stats.Float_vec.push st.latencies (now -. job.arrival);
    if st.completed_measured = 0 then st.first_measured_completion <- now;
    st.last_measured_completion <- now;
    st.completed_measured <- st.completed_measured + 1
  end

(* Work selection per discipline, called when [core] goes looking for its
   next job.  Returns the job to run, if any. *)
let next_job st discipline core_id =
  let core = st.cores.(core_id) in
  match discipline with
  | Single_queue -> Netsim.Fifo.pop st.shared
  | Per_core_queues -> Netsim.Fifo.pop core.queue
  | Work_stealing -> (
      match Netsim.Fifo.pop core.queue with
      | Some _ as j -> j
      | None ->
          (* Steal one queued request from another core, scanning from a
             rotating start so no victim is systematically favoured. *)
          let n = Array.length st.cores in
          let start = Dsim.Rng.int st.rng n in
          let rec scan i =
            if i >= n then None
            else begin
              let victim = st.cores.((start + i) mod n) in
              match Netsim.Fifo.pop victim.queue with
              | Some _ as j -> j
              | None -> scan (i + 1)
            end
          in
          scan 0)

let rec run_core st discipline core_id =
  let core = st.cores.(core_id) in
  match next_job st discipline core_id with
  | None -> core.busy <- false
  | Some job ->
      core.busy <- true;
      Dsim.Sim.schedule_after st.sim job.service (fun () ->
          record st job;
          run_core st discipline core_id)

let wake st discipline core_id =
  if not (st.cores.(core_id).busy) then begin
    st.cores.(core_id).busy <- true;
    run_core st discipline core_id
  end

let find_idle st =
  let n = Array.length st.cores in
  let rec go i = if i >= n then None else if not st.cores.(i).busy then Some i else go (i + 1) in
  go 0

let on_arrival st discipline job =
  match discipline with
  | Single_queue -> (
      Netsim.Fifo.push st.shared job;
      match find_idle st with Some c -> wake st discipline c | None -> ())
  | Per_core_queues ->
      let c = Dsim.Rng.int st.rng st.cfg.cores in
      Netsim.Fifo.push st.cores.(c).queue job;
      wake st discipline c
  | Work_stealing -> (
      let c = Dsim.Rng.int st.rng st.cfg.cores in
      Netsim.Fifo.push st.cores.(c).queue job;
      if not st.cores.(c).busy then wake st discipline c
      else
        (* Another idle core steals the request straight away: with zero
           stealing cost an idle core and a queued request never coexist. *)
        match find_idle st with
        | Some idle -> wake st discipline idle
        | None -> ())

let run discipline (cfg : config) =
  if cfg.cores < 1 then invalid_arg "Models.run: need at least one core";
  if not (cfg.load > 0.0) then invalid_arg "Models.run: load must be > 0";
  let sim = Dsim.Sim.create ~seed:cfg.seed () in
  let st =
    {
      sim;
      cfg;
      cores =
        Array.init cfg.cores (fun _ ->
            { busy = false; queue = Netsim.Fifo.create ~dummy:dummy_job () });
      shared = Netsim.Fifo.create ~dummy:dummy_job ();
      latencies = Stats.Float_vec.create ~capacity:cfg.requests ();
      completed_measured = 0;
      first_measured_completion = 0.0;
      last_measured_completion = 0.0;
      rng = Dsim.Sim.fork_rng sim;
    }
  in
  let lambda = cfg.load *. float_of_int cfg.cores in
  let mean_gap = 1.0 /. lambda in
  let arrival_rng = Dsim.Sim.fork_rng sim in
  let service_rng = Dsim.Sim.fork_rng sim in
  let rec arrive index =
    if index < cfg.requests then begin
      let service =
        if Dsim.Rng.unit_float service_rng < cfg.p_large then cfg.k else 1.0
      in
      let job = { arrival = Dsim.Sim.now sim; service; index } in
      on_arrival st discipline job;
      Dsim.Sim.schedule_after sim
        (Dsim.Rng.exponential arrival_rng ~mean:mean_gap)
        (fun () -> arrive (index + 1))
    end
  in
  Dsim.Sim.schedule_after sim 0.0 (fun () -> arrive 0);
  Dsim.Sim.run_until_idle sim;
  let qs = Stats.Quantile.many_of_vec st.latencies [ 0.5; 0.99 ] in
  let p50, p99 = (List.nth qs 0, List.nth qs 1) in
  let span = st.last_measured_completion -. st.first_measured_completion in
  let throughput =
    if span > 0.0 then float_of_int st.completed_measured /. span /. float_of_int cfg.cores
    else 0.0
  in
  {
    mean = Stats.Quantile.mean_of_vec st.latencies;
    p50;
    p99;
    throughput;
    completed = st.completed_measured;
  }

let sweep discipline cfg ~loads =
  List.map (fun load -> (load, run discipline { cfg with load })) loads
