(** The §2.2 queueing simulators.

    The paper motivates size-aware sharding with an idealized simulation of
    three size-unaware sharding strategies on an n-core server (Figure 2):

    - {b n×M/G/1} — early binding: each request is dispatched on arrival to
      a random core's private queue (keyhash-style, as in MICA EREW);
    - {b M/G/n} — late binding: one shared queue, an idle core takes the
      next request (as in RAMCloud);
    - {b n×M/G/1 + work stealing} — private queues, but an idle core steals
      queued requests from others (as in ZygOS).

    Dispatching, synchronization and locality costs are deliberately zero:
    the point is the queueing effect of a small fraction of large requests,
    not implementation overheads.

    Service times are bimodal: 1 time unit with probability [1 - p_large],
    [k] units with probability [p_large].  Arrivals are Poisson. *)

type discipline = Per_core_queues | Single_queue | Work_stealing

val discipline_name : discipline -> string

type config = {
  cores : int;
  load : float;
      (** offered load normalized to the all-small capacity: arrival rate =
          [load * cores / 1.0] requests per time unit.  This matches
          Figure 2's x-axis ("throughput normalized w.r.t. max with
          K = 1"). *)
  p_large : float;   (** fraction (e.g. 0.00125) of large requests *)
  k : float;         (** service time of a large request, in small units *)
  requests : int;    (** sample size *)
  warmup_fraction : float; (** fraction of requests excluded from stats *)
  seed : int;
}

val default_config : config
(** 8 cores, p_large = 0.00125, K = 100, 200k requests, 10 % warm-up. *)

type result = {
  mean : float;
  p50 : float;
  p99 : float;
  throughput : float; (** completed per time unit, normalized like [load] *)
  completed : int;
}

val run : discipline -> config -> result
(** Simulate and report response-time statistics in small-service units. *)

val sweep :
  discipline -> config -> loads:float list -> (float * result) list
(** [sweep d cfg ~loads] runs the model at each normalized load. *)
