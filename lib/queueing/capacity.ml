type op_profile = {
  mean_cpu_us : float;
  mean_tx_bytes : float;
  mean_rx_bytes : float;
  mean_service_latency_us : float;
}

(* Numeric expectation of [f size] under the spec's trimodal item-size
   distribution.  Tiny and small classes are summed exactly over their
   integer supports; the large class is integrated on a fine grid. *)
let expect_size (spec : Workload.Spec.t) f =
  let mean_uniform_int lo hi =
    let acc = ref 0.0 in
    for s = lo to hi do
      acc := !acc +. f s
    done;
    !acc /. float_of_int (hi - lo + 1)
  in
  let mean_uniform_grid lo hi =
    let steps = 4096 in
    let acc = ref 0.0 in
    for i = 0 to steps - 1 do
      let s =
        lo + int_of_float (float_of_int (hi - lo) *. (float_of_int i +. 0.5)
                           /. float_of_int steps)
      in
      acc := !acc +. f s
    done;
    !acc /. float_of_int steps
  in
  let tiny = mean_uniform_int Workload.Spec.tiny_min Workload.Spec.tiny_max in
  let small = mean_uniform_int Workload.Spec.small_min Workload.Spec.small_max in
  let large = mean_uniform_grid Workload.Spec.large_min spec.Workload.Spec.s_large_max in
  let pl = spec.Workload.Spec.p_large /. 100.0 in
  let tf = spec.Workload.Spec.tiny_fraction in
  ((1.0 -. pl) *. ((tf *. tiny) +. ((1.0 -. tf) *. small))) +. (pl *. large)

let wire payload = float_of_int (Netsim.Frame.wire_bytes_for_payload payload)

let profile (spec : Workload.Spec.t) (cost : Kvserver.Cost_model.t) =
  let g = spec.Workload.Spec.get_ratio in
  let cpu op s = Kvserver.Cost_model.cpu_time cost op ~item_size:s in
  let mean_cpu_us =
    (g *. expect_size spec (cpu Kvserver.Cost_model.Get))
    +. ((1.0 -. g) *. expect_size spec (cpu Kvserver.Cost_model.Put))
  in
  let mean_tx_bytes =
    (g
    *. expect_size spec (fun s ->
           wire (Kvserver.Cost_model.reply_payload Kvserver.Cost_model.Get ~item_size:s)))
    +. ((1.0 -. g) *. wire Proto.Wire.put_reply_size)
  in
  let mean_rx_bytes =
    (g *. wire (Proto.Wire.get_request_size ~key_len:Kvserver.Cost_model.key_size))
    +. (1.0 -. g)
       *. expect_size spec (fun s ->
              wire
                (Kvserver.Cost_model.request_payload Kvserver.Cost_model.Put ~item_size:s))
  in
  let us_per_byte = 8.0e-3 /. 40.0 in
  let mean_service_latency_us =
    cost.Kvserver.Cost_model.pipeline_latency_us +. mean_cpu_us
    +. (g
       *. expect_size spec (fun s ->
              us_per_byte
              *. wire
                   (Kvserver.Cost_model.reply_payload Kvserver.Cost_model.Get
                      ~item_size:s)))
  in
  { mean_cpu_us; mean_tx_bytes; mean_rx_bytes; mean_service_latency_us }

let nic_bound_mops spec cost ~gbps =
  let p = profile spec cost in
  gbps *. 1.0e9 /. 8.0 /. p.mean_tx_bytes /. 1.0e6

let cpu_bound_mops spec cost ~cores ?(overhead_us = 0.0) () =
  let p = profile spec cost in
  float_of_int cores /. (p.mean_cpu_us +. overhead_us)

(* Mixture CDF of item sizes, for the threshold percentile. *)
let size_quantile (spec : Workload.Spec.t) q =
  let pl = spec.Workload.Spec.p_large /. 100.0 in
  let tf = spec.Workload.Spec.tiny_fraction in
  let uniform_cdf lo hi s =
    if s < float_of_int lo then 0.0
    else if s >= float_of_int hi then 1.0
    else (s -. float_of_int lo) /. float_of_int (hi - lo)
  in
  let cdf s =
    ((1.0 -. pl)
    *. ((tf *. uniform_cdf Workload.Spec.tiny_min Workload.Spec.tiny_max s)
       +. ((1.0 -. tf) *. uniform_cdf Workload.Spec.small_min Workload.Spec.small_max s)))
    +. (pl *. uniform_cdf Workload.Spec.large_min spec.Workload.Spec.s_large_max s)
  in
  let rec bisect lo hi n =
    if n = 0 then 0.5 *. (lo +. hi)
    else begin
      let mid = 0.5 *. (lo +. hi) in
      if cdf mid < q then bisect mid hi (n - 1) else bisect lo mid (n - 1)
    end
  in
  bisect 1.0 (float_of_int spec.Workload.Spec.s_large_max) 60

let expected_large_cores spec cost ~cores ~percentile =
  ignore cost;
  let threshold = size_quantile spec percentile in
  let pkt s =
    Kvserver.Cost_model.request_cost Kvserver.Cost_model.Packets Kvserver.Cost_model.Get
      ~item_size:s
  in
  let small_cost = expect_size spec (fun s -> if float_of_int s <= threshold then pkt s else 0.0) in
  let total_cost = expect_size spec pkt in
  let frac_small = if total_cost > 0.0 then small_cost /. total_cost else 1.0 in
  let n_small =
    int_of_float (ceil (frac_small *. float_of_int cores)) |> max 1 |> min cores
  in
  cores - n_small

let minos_small_pool_bound_mops spec cost ~cores ~n_small =
  if n_small < 1 then invalid_arg "Capacity.minos_small_pool_bound_mops: n_small >= 1";
  ignore cores;
  (* The small pool absorbs the sub-threshold ~99 % of requests, each
     costing its CPU time plus the per-request profiling charge. *)
  let g = spec.Workload.Spec.get_ratio in
  let small_only = { spec with Workload.Spec.p_large = 0.0 } in
  let cpu op s = Kvserver.Cost_model.cpu_time cost op ~item_size:s in
  let mean_small_cpu =
    (g *. expect_size small_only (cpu Kvserver.Cost_model.Get))
    +. ((1.0 -. g) *. expect_size small_only (cpu Kvserver.Cost_model.Put))
    +. cost.Kvserver.Cost_model.profile_us
  in
  float_of_int n_small /. (0.99 *. mean_small_cpu)

let predicted_peak_mops spec cost ~cores ~gbps =
  Float.min (nic_bound_mops spec cost ~gbps) (cpu_bound_mops spec cost ~cores ())

let hol_exposure (spec : Workload.Spec.t) cost ~cores ~offered_mops =
  (* Per-core large-service occupancy under keyhash sharding: the chance
     an arrival lands on a core currently serving a large request. *)
  let pl = spec.Workload.Spec.p_large /. 100.0 in
  let large_only_mean_cpu =
    let lo = Workload.Spec.large_min and hi = spec.Workload.Spec.s_large_max in
    let steps = 2048 in
    let acc = ref 0.0 in
    for i = 0 to steps - 1 do
      let s =
        lo + int_of_float (float_of_int (hi - lo) *. (float_of_int i +. 0.5)
                           /. float_of_int steps)
      in
      acc :=
        !acc +. Kvserver.Cost_model.cpu_time cost Kvserver.Cost_model.Get ~item_size:s
    done;
    !acc /. float_of_int steps
  in
  (* offered_mops = ops/µs across all cores; each core receives 1/n of
     the arrivals, so its large-service occupancy is
     (λ/n) · p_l · E[S_large]. *)
  offered_mops /. float_of_int cores *. pl *. large_only_mean_cpu
