(** Closed-form queueing results used to validate the simulators.

    The discrete-event models in {!Models} are checked in the test suite
    against these formulas on the cases where exact answers exist. *)

val mm1_mean_response : lambda:float -> mu:float -> float
(** Mean response time of an M/M/1 queue, [1 / (mu - lambda)].  Requires
    [lambda < mu]. *)

val mm1_response_quantile : lambda:float -> mu:float -> q:float -> float
(** Exact quantile of the (exponential) M/M/1 response-time distribution:
    [-ln(1 - q) / (mu - lambda)]. *)

val mg1_mean_wait : lambda:float -> es:float -> es2:float -> float
(** Pollaczek–Khinchine mean waiting time: [lambda * E(S^2) / (2 (1 - rho))]
    with [rho = lambda * E(S)].  [es] is E(S), [es2] is E(S^2). *)

val mg1_mean_response : lambda:float -> es:float -> es2:float -> float

val mmn_erlang_c : n:int -> offered:float -> float
(** Erlang C: probability an arrival waits in an M/M/n queue with offered
    load [offered = lambda / mu] (in Erlangs).  Requires [offered < n]. *)

val mmn_mean_wait : n:int -> lambda:float -> mu:float -> float
(** Mean waiting time of M/M/n via Erlang C. *)

val bimodal_moments :
  p_large:float -> small:float -> large:float -> float * float
(** [(E(S), E(S^2))] of the two-point service distribution used in §2.2:
    service [small] with probability [1 - p_large], [large] with
    probability [p_large]. *)
