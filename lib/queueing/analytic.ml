let check_stable lambda mu =
  if not (lambda < mu) then invalid_arg "Analytic: unstable queue (lambda >= mu)"

let mm1_mean_response ~lambda ~mu =
  check_stable lambda mu;
  1.0 /. (mu -. lambda)

let mm1_response_quantile ~lambda ~mu ~q =
  check_stable lambda mu;
  if q <= 0.0 || q >= 1.0 then invalid_arg "Analytic.mm1_response_quantile: q out of (0,1)";
  -.log (1.0 -. q) /. (mu -. lambda)

let mg1_mean_wait ~lambda ~es ~es2 =
  let rho = lambda *. es in
  if not (rho < 1.0) then invalid_arg "Analytic.mg1_mean_wait: rho >= 1";
  lambda *. es2 /. (2.0 *. (1.0 -. rho))

let mg1_mean_response ~lambda ~es ~es2 = es +. mg1_mean_wait ~lambda ~es ~es2

let mmn_erlang_c ~n ~offered =
  if n < 1 then invalid_arg "Analytic.mmn_erlang_c: n must be >= 1";
  if not (offered < float_of_int n) then
    invalid_arg "Analytic.mmn_erlang_c: offered load >= n";
  (* Compute iteratively to avoid overflow of a^n / n!. *)
  let rec term k acc =
    (* acc = a^k / k! *)
    if k = n then acc else term (k + 1) (acc *. offered /. float_of_int (k + 1))
  in
  let rec sum k acc total =
    if k = n then total
    else begin
      let acc' = acc *. offered /. float_of_int (k + 1) in
      sum (k + 1) acc' (total +. acc')
    end
  in
  let a_n_over_fact = term 0 1.0 in
  let partial_sum = sum 0 1.0 1.0 in
  let rho = offered /. float_of_int n in
  let top = a_n_over_fact /. (1.0 -. rho) in
  top /. (partial_sum -. a_n_over_fact +. top)

let mmn_mean_wait ~n ~lambda ~mu =
  let offered = lambda /. mu in
  let c = mmn_erlang_c ~n ~offered in
  c /. ((float_of_int n *. mu) -. lambda)

let bimodal_moments ~p_large ~small ~large =
  if p_large < 0.0 || p_large > 1.0 then
    invalid_arg "Analytic.bimodal_moments: p_large out of [0,1]";
  let es = ((1.0 -. p_large) *. small) +. (p_large *. large) in
  let es2 = ((1.0 -. p_large) *. small *. small) +. (p_large *. large *. large) in
  (es, es2)
