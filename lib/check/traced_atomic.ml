(* Atomics that yield to the interleaving scheduler before every access.
   Execution under the explorer is single-domain and sequential, so plain
   mutable state plus an effect per access models sequentially consistent
   atomics exactly. *)

type 'a t = { id : int; mutable v : 'a }

let ids = ref 0

let make v =
  incr ids;
  { id = !ids; v }

let get t =
  Trace_sched.step { Trace_sched.loc = t.id; kind = Trace_sched.Get };
  t.v

let set t x =
  Trace_sched.step { Trace_sched.loc = t.id; kind = Trace_sched.Set };
  t.v <- x

let exchange t x =
  Trace_sched.step { Trace_sched.loc = t.id; kind = Trace_sched.Exchange };
  let old = t.v in
  t.v <- x;
  old

let compare_and_set t expected desired =
  Trace_sched.step { Trace_sched.loc = t.id; kind = Trace_sched.Cas };
  (* Physical equality, like [Stdlib.Atomic.compare_and_set]. *)
  if t.v == expected then begin
    t.v <- desired;
    true
  end
  else false

let fetch_and_add t d =
  Trace_sched.step { Trace_sched.loc = t.id; kind = Trace_sched.Faa };
  let old = t.v in
  t.v <- old + d;
  old

let cpu_relax () = ()

(* Plain cells reuse the traced-location representation; only the op kind
   differs, which is what the independence relation and reports see. *)
type 'a cell = 'a t

let cell v = make v

let read t =
  Trace_sched.step { Trace_sched.loc = t.id; kind = Trace_sched.Plain_read };
  t.v

let write t x =
  Trace_sched.step { Trace_sched.loc = t.id; kind = Trace_sched.Plain_write };
  t.v <- x
