(** dscheck-style exhaustive interleaving explorer.

    Checked code performs the {!Step} effect before every traced
    shared-memory access (see {!Traced_atomic}); the explorer replays a
    scenario under an effect-handler scheduler, enumerating every
    interleaving of the traced operations — pruned by sleep sets, which
    only skip schedules Mazurkiewicz-equivalent to an explored one — or
    every interleaving within a preemption bound.

    Scheduling points are exactly the traced operations: the atomics plus
    the [Atomic_ops.S.cell] plain slots.  Exploration is sequentially
    consistent over those, and untraced process code executes atomically
    with the preceding traced operation of the same process.  This is the
    granularity at which the release/acquire discipline of
    [Ring]/[Spinlock] can be checked; see DESIGN.md §8 for the full list
    of model assumptions. *)

type op_kind = Get | Set | Exchange | Cas | Faa | Plain_read | Plain_write

type op = { loc : int; kind : op_kind }

type _ Effect.t += Step : op -> unit Effect.t

val step : op -> unit
(** Performed by traced atomics before committing the operation.  Outside
    the scheduler (scenario setup / final checks) it is a no-op, so traced
    data structures also work untraced. *)

val independent : op -> op -> bool
(** Whether two operations commute: different locations, or both reads. *)

type scenario = unit -> (unit -> unit) array * (unit -> unit)
(** A scenario builds a fresh instance of the state under test and returns
    the concurrent processes plus a final check to run (unscheduled) once
    every process has terminated.  It is re-invoked from scratch for every
    explored schedule, so it must not share mutable state across
    invocations.  Processes must perform a bounded number of traced
    operations on every path (no unbounded spin loops: use
    [try_lock]-style bounded retries), or the step budget will truncate
    schedules.  Code before a process's first traced operation is treated
    as process-local setup and runs unscheduled. *)

type stats = {
  executions : int;
      (** schedules fully explored (leaves of the exploration tree) *)
  pruned : int;  (** schedules cut short by sleep sets as redundant *)
  truncated : int;  (** schedules abandoned by the [max_steps] budget *)
  longest_trace : int;  (** traced steps in the longest schedule *)
  complete : bool;  (** false iff [max_executions] stopped the search *)
  violation : (string * int list) option;
      (** first violation: exception text plus the schedule (process index
          per step) that produced it *)
}

exception Violation of string * int list

val explore :
  ?max_steps:int ->
  ?max_executions:int ->
  ?preemption_bound:int ->
  ?sleep_sets:bool ->
  scenario ->
  stats
(** Depth-first search over all schedules of [scenario].  Any exception
    raised by a process or by the final check is reported as a violation
    (with its schedule) in the result; [explore] itself does not raise.

    [max_steps] (default 2000) bounds the length of one schedule.
    [max_executions] (default 5,000,000) bounds the search as a safety
    valve — [complete = true] means the enumeration was exhaustive.
    [preemption_bound], when given, switches to CHESS-style context
    bounding: only schedules with at most that many preemptions (switches
    away from a still-enabled process) are explored.
    [sleep_sets] (default true) toggles the sound sleep-set reduction;
    disable it to enumerate interleavings literally (tests cross-validate
    the reduction this way on small histories). *)
