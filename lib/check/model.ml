(* Model-checked instantiations of the lock-free kernel, plus the canned
   scenarios the tests and `minos check` drive, plus deliberately broken
   variants that validate the checker catches real bugs. *)

module Ring = Netsim.Ring.Make (Traced_atomic)
module Spinlock = Kvstore.Spinlock.Make (Traced_atomic)

(* ------------------------------------------------------------------ *)
(* Ring scenarios *)

(* Values are [producer * 1000 + i], so the producer and per-producer rank
   are recoverable; [pre_cycles] quiescent push/pop rounds advance the
   head/tail counters before the concurrent part, exercising slot reuse
   and sequence wrap-around. *)

let value_producer v = v / 1000

let value_rank v = v mod 1000

(* Each consumer's pop sequence is totally ordered by the head CAS, so
   within it the values of any single producer must appear in push order.
   [label] only decorates the failure message. *)
let check_fifo ~producers ~label seq =
  for p = 0 to producers - 1 do
    let rank = ref (-1) in
    List.iter
      (fun v ->
        if v >= 0 && value_producer v = p then begin
          if value_rank v <= !rank then
            failwith
              (Printf.sprintf "ring: FIFO violated for producer %d in %s" p
                 label);
          rank := value_rank v
        end)
      seq
  done

let ring_conservation ?(pre_cycles = 0) ~capacity ~producers ~pushes_per_producer
    ~consumers ~pops_per_consumer () : Trace_sched.scenario =
 fun () ->
  let r = Ring.create ~capacity in
  for i = 1 to pre_cycles do
    if not (Ring.try_push r (-i)) then failwith "ring: pre-cycle push failed";
    match Ring.try_pop r with
    | Some _ -> ()
    | None -> failwith "ring: pre-cycle pop failed"
  done;
  let pushed = Array.make producers [] in
  let popped = Array.make consumers [] in
  let producer p () =
    for i = 0 to pushes_per_producer - 1 do
      let v = (p * 1000) + i in
      if Ring.try_push r v then pushed.(p) <- v :: pushed.(p)
    done
  in
  let consumer c () =
    for _ = 1 to pops_per_consumer do
      match Ring.try_pop r with
      | Some v -> popped.(c) <- v :: popped.(c)
      | None -> ()
    done
  in
  let procs =
    Array.init (producers + consumers) (fun i ->
        if i < producers then producer i else consumer (i - producers))
  in
  let final () =
    let drained = ref [] in
    (try
       while true do
         drained := Ring.pop_exn r :: !drained
       done
     with Netsim.Ring.Empty -> ());
    let drained = List.rev !drained in
    let all_pushed = List.concat_map List.rev (Array.to_list pushed) in
    let consumed = List.concat_map List.rev (Array.to_list popped) in
    let all_popped = consumed @ drained in
    let sorted = List.sort Int.compare in
    if sorted all_popped <> sorted all_pushed then
      failwith
        (Printf.sprintf "ring: lost/duplicated values (%d pushed, %d popped)"
           (List.length all_pushed) (List.length all_popped));
    Array.iteri
      (fun c seq ->
        check_fifo ~producers ~label:(Printf.sprintf "consumer %d" c)
          (List.rev seq))
      popped;
    check_fifo ~producers ~label:"final drain" drained
  in
  (procs, final)

(* The shed path of admission control: a producer whose push is refused
   by a full ring sheds the request (in the server: replies Overloaded)
   instead of retrying.  Conservation must still hold with the extra
   disposition — every request ends up served, still queued, or shed,
   exactly once; a request that is both shed and served (double-counted)
   or neither (lost) is the bug this scenario exists to catch. *)
let ring_shed_conservation ~capacity ~producers ~pushes_per_producer ~consumers
    ~pops_per_consumer () : Trace_sched.scenario =
 fun () ->
  let r = Ring.create ~capacity in
  let accepted = Array.make producers [] in
  let shed = Array.make producers [] in
  let served = Array.make consumers [] in
  let producer p () =
    for i = 0 to pushes_per_producer - 1 do
      let v = (p * 1000) + i in
      if Ring.try_push r v then accepted.(p) <- v :: accepted.(p)
      else shed.(p) <- v :: shed.(p)
    done
  in
  let consumer c () =
    for _ = 1 to pops_per_consumer do
      match Ring.try_pop r with
      | Some v -> served.(c) <- v :: served.(c)
      | None -> ()
    done
  in
  let procs =
    Array.init (producers + consumers) (fun i ->
        if i < producers then producer i else consumer (i - producers))
  in
  let final () =
    let drained = ref [] in
    (try
       while true do
         drained := Ring.pop_exn r :: !drained
       done
     with Netsim.Ring.Empty -> ());
    let sorted = List.sort Int.compare in
    let attempted =
      List.concat
        (List.init producers (fun p ->
             List.init pushes_per_producer (fun i -> (p * 1000) + i)))
    in
    let drained = List.rev !drained in
    let dispositions =
      List.concat_map List.rev (Array.to_list shed)
      @ List.concat_map List.rev (Array.to_list served)
      @ drained
    in
    if sorted dispositions <> sorted attempted then
      failwith
        (Printf.sprintf
           "ring+shed: %d requests attempted but %d dispositions \
            (served/queued/shed) — lost or double-counted"
           (List.length attempted)
           (List.length dispositions));
    (* Shed decisions happen outside the ring, so FIFO still holds for
       what went through it. *)
    Array.iteri
      (fun c seq ->
        check_fifo ~producers ~label:(Printf.sprintf "consumer %d" c)
          (List.rev seq))
      served;
    check_fifo ~producers ~label:"final drain" drained
  in
  (procs, final)

(* Concurrent pushes/pops with an observer asserting the documented
   [length] bounds: every snapshot must land in [0, capacity]. *)
let ring_length_bounds ~capacity ~producers ~pushes_per_producer ~observations
    () : Trace_sched.scenario =
 fun () ->
  let r = Ring.create ~capacity in
  let producer p () =
    for i = 0 to pushes_per_producer - 1 do
      ignore (Ring.try_push r ((p * 1000) + i))
    done
  in
  let consumer () = ignore (Ring.try_pop r) in
  let observer () =
    for _ = 1 to observations do
      let len = Ring.length r in
      if len < 0 || len > capacity then
        failwith (Printf.sprintf "ring: length %d outside [0, %d]" len capacity)
    done
  in
  let procs =
    Array.init (producers + 2) (fun i ->
        if i < producers then producer i
        else if i = producers then consumer
        else observer)
  in
  (procs, fun () -> ())

(* ------------------------------------------------------------------ *)
(* Spinlock scenario *)

(* Mutual exclusion via a traced in-critical-section flag, plus a
   non-atomic read-modify-write counter whose lost updates would betray
   two holders even if the flag check were racy itself.  Acquisition uses
   bounded [try_lock] retries: [lock]'s unbounded TTAS spin would make the
   schedule tree infinite (see Trace_sched on scenario requirements). *)
let spinlock_mutex ~domains ~iters ~retries () : Trace_sched.scenario =
 fun () ->
  let l = Spinlock.create () in
  let in_cs = Traced_atomic.cell false in
  let count = Traced_atomic.cell 0 in
  let acquired = Array.make domains 0 in
  let proc d () =
    for _ = 1 to iters do
      let rec attempt n = n > 0 && (Spinlock.try_lock l || attempt (n - 1)) in
      if attempt retries then begin
        if Traced_atomic.read in_cs then
          failwith "spinlock: two processes in the critical section";
        Traced_atomic.write in_cs true;
        let v = Traced_atomic.read count in
        Traced_atomic.write count (v + 1);
        Traced_atomic.write in_cs false;
        Spinlock.unlock l;
        acquired.(d) <- acquired.(d) + 1
      end
    done
  in
  let final () =
    let total = Array.fold_left ( + ) 0 acquired in
    let counted = Traced_atomic.read count in
    if counted <> total then
      failwith
        (Printf.sprintf "spinlock: %d of %d critical sections lost"
           (total - counted) total)
  in
  (Array.init domains (fun d -> proc d), final)

(* ------------------------------------------------------------------ *)
(* Deliberately broken variants: the checker must find their bugs, or it
   is not checking anything. *)

module Buggy = struct
  module A = Traced_atomic

  (* Vyukov ring with the publication order reversed: the slot sequence is
     released before the value is written, so a consumer interleaved
     between the two reads the stale slot (the sentinel). *)
  module Late_write_ring = struct
    type t = {
      seqs : int A.t array;
      vals : int A.cell array;
      mask : int;
      head : int A.t;
      tail : int A.t;
    }

    let sentinel = min_int

    let create ~capacity =
      {
        seqs = Array.init capacity (fun i -> A.make i);
        vals = Array.init capacity (fun _ -> A.cell sentinel);
        mask = capacity - 1;
        head = A.make 0;
        tail = A.make 0;
      }

    let try_push t v =
      let rec attempt () =
        let pos = A.get t.tail in
        let i = pos land t.mask in
        let seq = A.get t.seqs.(i) in
        let diff = seq - pos in
        if diff = 0 then
          if A.compare_and_set t.tail pos (pos + 1) then begin
            A.set t.seqs.(i) (pos + 1) (* BUG: published before the write *);
            A.write t.vals.(i) v;
            true
          end
          else attempt ()
        else if diff < 0 then false
        else attempt ()
      in
      attempt ()

    let try_pop t =
      let rec attempt () =
        let pos = A.get t.head in
        let i = pos land t.mask in
        let seq = A.get t.seqs.(i) in
        let diff = seq - (pos + 1) in
        if diff = 0 then
          if A.compare_and_set t.head pos (pos + 1) then begin
            let v = A.read t.vals.(i) in
            A.write t.vals.(i) sentinel;
            A.set t.seqs.(i) (pos + t.mask + 1);
            Some v
          end
          else attempt ()
        else if diff < 0 then None
        else attempt ()
      in
      attempt ()
  end

  (* One producer, one consumer: any popped value must be a real one. *)
  let late_write_ring_scenario () : Trace_sched.scenario =
   fun () ->
    let r = Late_write_ring.create ~capacity:2 in
    let procs =
      [|
        (fun () -> ignore (Late_write_ring.try_push r 7));
        (fun () ->
          match Late_write_ring.try_pop r with
          | Some v when v = Late_write_ring.sentinel ->
              failwith "buggy ring: popped an unwritten slot"
          | Some _ | None -> ());
      |]
    in
    (procs, fun () -> ())

  (* Test-and-set "lock" whose test and set are two separate atomic
     operations: two processes can both observe the lock free. *)
  module Tas_lock = struct
    let create () = A.make false

    let try_lock t =
      if A.get t then false
      else begin
        A.set t true (* BUG: not atomic with the test *);
        true
      end

    let unlock t = A.set t false
  end

  let tas_lock_scenario ~domains () : Trace_sched.scenario =
   fun () ->
    let l = Tas_lock.create () in
    let in_cs = A.cell false in
    let proc _ () =
      if Tas_lock.try_lock l then begin
        if A.read in_cs then failwith "buggy lock: mutual exclusion violated";
        A.write in_cs true;
        A.write in_cs false;
        Tas_lock.unlock l
      end
    in
    (Array.init domains (fun d -> proc d), fun () -> ())
end
