(* Exhaustive interleaving explorer for the lock-free kernel, in the style
   of dscheck.

   Checked code (Ring/Spinlock instantiated on Traced_atomic) performs the
   [Step] effect before every shared-memory access.  A deep effect handler
   captures the continuation, which hands the scheduler one "grant = one
   shared access" unit of progress per process.  The explorer then drives
   a depth-first search over all schedules: each execution replays the
   scenario from scratch following a prefix of choices, extends it with a
   default run-to-completion policy while recording which processes were
   enabled (and their pending operations) at every step, and finally
   spawns one backtrack point per not-chosen enabled process.

   Pruning ("DPOR-lite"):
   - Sleep sets (Godefroid).  After a child of a node has been fully
     explored, the process that took it is put to sleep for the node's
     remaining children and stays asleep down those subtrees until some
     executed operation is dependent with its pending operation (same
     location, at least one write).  Sleep sets only skip schedules that
     are Mazurkiewicz-equivalent to an already-explored one, so the
     reduction is sound: a violation reachable by any interleaving is
     still reached.  [~sleep_sets:false] disables the pruning (the
     explorer then enumerates every interleaving literally, which the
     tests use to cross-validate the reduction on small histories).
   - Optional CHESS-style preemption bounding ([?preemption_bound]) for
     histories too big to exhaust.

   Model assumptions (see DESIGN.md §8): scheduling points are the traced
   operations — the atomics plus the [Atomic_ops.S.cell] plain slots — so
   exploration is sequentially consistent over those; untraced process
   code executes atomically with the preceding traced operation of the
   same process.  Scenario setup and final checks run unscheduled. *)

type op_kind = Get | Set | Exchange | Cas | Faa | Plain_read | Plain_write

type op = { loc : int; kind : op_kind }

type _ Effect.t += Step : op -> unit Effect.t

(* Outside the scheduler (scenario setup, final checks) there is no
   handler: swallow [Unhandled] so traced atomics degrade to immediate
   execution. *)
let step op = try Effect.perform (Step op) with Effect.Unhandled _ -> ()

type scenario = unit -> (unit -> unit) array * (unit -> unit)

type stats = {
  executions : int;
  pruned : int;
  truncated : int;
  longest_trace : int;
  complete : bool;
  violation : (string * int list) option;
}

exception Violation of string * int list

let is_read = function Get | Plain_read -> true | _ -> false

(* Two operations commute unless they touch the same location and at
   least one of them can write it. *)
let independent a b = a.loc <> b.loc || (is_read a.kind && is_read b.kind)

(* ------------------------------------------------------------------ *)
(* One process under the scheduler *)

type proc_state =
  | Not_started of (unit -> unit)
  | Paused of op * (unit, unit) Effect.Deep.continuation
  | Finished

type proc = { mutable state : proc_state }

let handler proc =
  let open Effect.Deep in
  {
    retc = (fun () -> proc.state <- Finished);
    exnc = (fun e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Step op ->
            Some
              (fun (k : (a, unit) continuation) -> proc.state <- Paused (op, k))
        | _ -> None);
  }

(* Run the process's (process-local) preamble up to its first traced
   operation, which becomes pending.  Processes with no traced operations
   finish here. *)
let ensure_started proc =
  match proc.state with
  | Not_started f -> Effect.Deep.match_with f () (handler proc)
  | Paused _ | Finished -> ()

(* Commit the pending operation and run the process up to its next traced
   operation (or to termination). *)
let commit proc =
  match proc.state with
  | Paused (_, k) -> Effect.Deep.continue k ()
  | Not_started _ | Finished ->
      invalid_arg "Trace_sched.commit: process has no pending operation"

let alive proc = match proc.state with Finished -> false | _ -> true

let pending proc =
  match proc.state with
  | Paused (op, _) -> op
  | Not_started _ | Finished ->
      invalid_arg "Trace_sched.pending: process has no pending operation"

(* ------------------------------------------------------------------ *)
(* One execution *)

type sched_point = {
  chosen : int;
  enabled : int array;  (** processes alive at this point *)
  ops : op array;  (** pending operation of each process in [enabled] *)
  sleep : int list;  (** sleep set at this point (extension region only) *)
}

type run_end = Completed | Sleep_blocked | Truncated

(* Replays [scenario] following [prefix], then extends with the default
   policy (stick with the current process while it stays enabled and
   awake — the preemption-minimal path), starting from sleep set [sleep0]
   at the end of the prefix.  Raises [Violation] if the scenario or the
   checked code raised. *)
let run_one ~(scenario : scenario) ~prefix ~sleep0 ~max_steps =
  let fns, final = scenario () in
  let procs = Array.map (fun f -> { state = Not_started f }) fns in
  let schedule = ref [] in
  (* [!schedule] is newest-first; [rev_map] restores chronological order. *)
  let choices () = List.rev_map (fun sp -> sp.chosen) !schedule in
  let snapshot () =
    let n = ref 0 in
    Array.iter (fun p -> if alive p then incr n) procs;
    let enabled = Array.make !n 0 in
    let ops = Array.make !n { loc = 0; kind = Get } in
    let j = ref 0 in
    Array.iteri
      (fun i p ->
        if alive p then begin
          enabled.(!j) <- i;
          ops.(!j) <- pending p;
          incr j
        end)
      procs;
    (enabled, ops)
  in
  let do_step i sleep =
    let enabled, ops = snapshot () in
    schedule := { chosen = i; enabled; ops; sleep } :: !schedule;
    try commit procs.(i)
    with e -> raise (Violation (Printexc.to_string e, choices ()))
  in
  (try Array.iter ensure_started procs
   with e -> raise (Violation (Printexc.to_string e, [])));
  List.iter (fun i -> do_step i []) prefix;
  let steps = ref (List.length prefix) in
  let last = ref (match List.rev prefix with [] -> -1 | i :: _ -> i) in
  let sleep = ref sleep0 in
  let rec extend () =
    let alive_count = Array.fold_left (fun n p -> if alive p then n + 1 else n) 0 procs in
    if alive_count = 0 then Completed
    else if !steps >= max_steps then Truncated
    else begin
      let awake i = alive procs.(i) && not (List.mem i !sleep) in
      let choice =
        if !last >= 0 && awake !last then Some !last
        else begin
          let found = ref None in
          Array.iteri
            (fun i _ -> if !found = None && awake i then found := Some i)
            procs;
          !found
        end
      in
      match choice with
      | None -> Sleep_blocked (* every live process is asleep: redundant *)
      | Some i ->
          let op_i = pending procs.(i) in
          do_step i !sleep;
          (* Dependent operations wake sleepers; note [pending] of a
             sleeping process is unchanged since it did not run. *)
          sleep :=
            List.filter (fun s -> independent op_i (pending procs.(s))) !sleep;
          last := i;
          incr steps;
          extend ()
    end
  in
  let ending = extend () in
  if ending = Completed then begin
    match final () with
    | () -> ()
    | exception e -> raise (Violation (Printexc.to_string e, choices ()))
  end;
  (Array.of_list (List.rev !schedule), ending)

(* ------------------------------------------------------------------ *)
(* DFS over schedules *)

let array_mem x a =
  let n = Array.length a in
  let rec go i = i < n && (a.(i) = x || go (i + 1)) in
  go 0

(* Number of preemptions in choices[0..i-1] @ [q]: a switch away from a
   process that was still enabled at the switch point. *)
let preemptions trace i q =
  let count = ref 0 in
  let prev = ref (-1) in
  for j = 0 to i - 1 do
    let c = trace.(j).chosen in
    if !prev >= 0 && !prev <> c && array_mem !prev trace.(j).enabled then
      incr count;
    prev := c
  done;
  if !prev >= 0 && !prev <> q && array_mem !prev trace.(i).enabled then
    incr count;
  !count

let explore ?(max_steps = 2000) ?(max_executions = 5_000_000)
    ?preemption_bound ?(sleep_sets = true) (scenario : scenario) =
  let executions = ref 0 in
  let pruned = ref 0 in
  let truncated = ref 0 in
  let longest = ref 0 in
  let complete = ref true in
  let violation = ref None in
  let prefix_of trace i =
    let rec go j acc =
      if j < 0 then acc else go (j - 1) (trace.(j).chosen :: acc)
    in
    go (i - 1) []
  in
  let op_of sp q =
    let rec go i =
      if i >= Array.length sp.enabled then
        invalid_arg "Trace_sched.explore: process not enabled"
      else if sp.enabled.(i) = q then sp.ops.(i)
      else go (i + 1)
    in
    go 0
  in
  let rec go prefix sleep0 =
    if !violation = None then begin
      if !executions + !pruned >= max_executions then complete := false
      else
        match run_one ~scenario ~prefix ~sleep0 ~max_steps with
        | exception Violation (msg, sched) ->
            incr executions;
            violation := Some (msg, sched)
        | trace, ending ->
            (match ending with
            | Completed -> incr executions
            | Sleep_blocked -> incr pruned
            | Truncated ->
                incr executions;
                incr truncated);
            if Array.length trace > !longest then longest := Array.length trace;
            let plen = List.length prefix in
            for i = plen to Array.length trace - 1 do
              let sp = trace.(i) in
              (* Children explored so far at this node (first the default
                 child, then earlier siblings), with their operations:
                 they go to sleep for the remaining siblings. *)
              let explored = ref [ (sp.chosen, op_of sp sp.chosen) ] in
              List.iter
                (fun s -> explored := (s, op_of sp s) :: !explored)
                sp.sleep;
              Array.iter
                (fun q ->
                  if q <> sp.chosen && not (List.mem q sp.sleep) then begin
                    let admit =
                      match preemption_bound with
                      | None -> true
                      | Some b -> preemptions trace i q <= b
                    in
                    if admit then begin
                      let op_q = op_of sp q in
                      let child_sleep =
                        if sleep_sets then
                          List.filter_map
                            (fun (s, op_s) ->
                              if independent op_q op_s then Some s else None)
                            !explored
                        else []
                      in
                      go (prefix_of trace i @ [ q ]) child_sleep;
                      explored := (q, op_q) :: !explored
                    end
                  end)
                sp.enabled
            done
    end
  in
  go [] [];
  {
    executions = !executions;
    pruned = !pruned;
    truncated = !truncated;
    longest_trace = !longest;
    complete = !complete;
    violation = !violation;
  }
