(** [Atomic_ops.S] instance whose every operation is a scheduling point of
    {!Trace_sched}.  Instantiate [Ring.Make]/[Spinlock.Make] with this to
    model-check them; see {!Model}. *)

include Atomic_ops.S
