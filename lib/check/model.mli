(** Model-checked instantiations of the lock-free kernel and the canned
    scenarios driven by test/test_check.ml and `minos check`. *)

module Ring : Netsim.Ring.S
(** [Netsim.Ring.Make (Traced_atomic)]. *)

module Spinlock : Kvstore.Spinlock.S
(** [Kvstore.Spinlock.Make (Traced_atomic)]. *)

val ring_conservation :
  ?pre_cycles:int ->
  capacity:int ->
  producers:int ->
  pushes_per_producer:int ->
  consumers:int ->
  pops_per_consumer:int ->
  unit ->
  Trace_sched.scenario
(** Producers push tagged values (with bounded attempts), consumers pop
    with bounded attempts; the final check drains the ring and fails on
    any lost, duplicated or torn value, or on a per-producer FIFO
    violation within any consumer's pop sequence.  [pre_cycles] quiescent
    push/pop rounds run first to exercise slot reuse and sequence
    wrap-around. *)

val ring_shed_conservation :
  capacity:int ->
  producers:int ->
  pushes_per_producer:int ->
  consumers:int ->
  pops_per_consumer:int ->
  unit ->
  Trace_sched.scenario
(** The admission-control shed path: a producer whose push is refused by
    the full ring sheds the request instead of retrying (in the server:
    replies [Overloaded]).  The final check asserts every request gets
    exactly one disposition — served, still queued, or shed — so nothing
    is lost or double-counted, and per-producer FIFO still holds for the
    requests that did enter the ring. *)

val ring_length_bounds :
  capacity:int ->
  producers:int ->
  pushes_per_producer:int ->
  observations:int ->
  unit ->
  Trace_sched.scenario
(** Concurrent pushes/pops with an observer asserting every [Ring.length]
    snapshot lands in [0, capacity]. *)

val spinlock_mutex :
  domains:int -> iters:int -> retries:int -> unit -> Trace_sched.scenario
(** Each domain repeatedly acquires via bounded [try_lock] retries, runs a
    critical section over traced shared state, and releases.  Fails if two
    processes are ever inside the critical section or an update is lost. *)

(** Deliberately broken variants used to validate that the checker
    actually catches bugs (see test_check.ml). *)
module Buggy : sig
  val late_write_ring_scenario : unit -> Trace_sched.scenario
  (** Ring that publishes the slot sequence before writing the value; the
      checker must find the schedule where a consumer pops the unwritten
      slot. *)

  val tas_lock_scenario : domains:int -> unit -> Trace_sched.scenario
  (** Lock whose test and set are two separate atomics; the checker must
      find the schedule where two processes both acquire. *)
end
