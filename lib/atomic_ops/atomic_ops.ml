(* Signature of the atomic operations the lock-free kernel is written
   against, plus the production instantiation.

   Ring and Spinlock are functorized over [S] so the model checker in
   lib/check can substitute traced atomics whose every access yields to an
   effect-handler scheduler.  Production code uses [Native], which is
   [Stdlib.Atomic] re-exported with zero wrapping of the representation
   ([type 'a t = 'a Stdlib.Atomic.t]). *)

module type S = sig
  type 'a t

  val make : 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit
  val exchange : 'a t -> 'a -> 'a
  val compare_and_set : 'a t -> 'a -> 'a -> bool
  val fetch_and_add : int t -> int -> int

  val cpu_relax : unit -> unit
  (** Hint issued inside spin loops.  [Domain.cpu_relax] in production; a
      no-op under the model checker (every traced access is already a
      scheduling point). *)

  (* Plain (non-atomic) shared mutable cells.  Production compiles these
     to a bare mutable field; the model checker traces them so that the
     placement of plain accesses relative to the release/acquire atomics
     around them becomes a checkable property (e.g. a ring slot written
     after its sequence number was published shows up as an interleaving
     where a consumer reads the stale slot). *)
  type 'a cell

  val cell : 'a -> 'a cell
  val read : 'a cell -> 'a
  val write : 'a cell -> 'a -> unit
end

module Native : S with type 'a t = 'a Stdlib.Atomic.t = struct
  type 'a t = 'a Stdlib.Atomic.t

  let make = Stdlib.Atomic.make
  let get = Stdlib.Atomic.get
  let set = Stdlib.Atomic.set
  let exchange = Stdlib.Atomic.exchange
  let compare_and_set = Stdlib.Atomic.compare_and_set
  let fetch_and_add = Stdlib.Atomic.fetch_and_add
  let cpu_relax = Domain.cpu_relax

  type 'a cell = { mutable contents : 'a }

  let cell v = { contents = v }
  let read c = c.contents
  let write c v = c.contents <- v
end
