(** Atomic-operations signature shared by the lock-free kernel.

    [Ring.Make] and [Spinlock.Make] take an [S]; production instantiates
    [Native] (a transparent re-export of [Stdlib.Atomic]) while the model
    checker in lib/check instantiates traced atomics driven by an
    effect-handler scheduler. *)

module type S = sig
  type 'a t

  val make : 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit
  val exchange : 'a t -> 'a -> 'a
  val compare_and_set : 'a t -> 'a -> 'a -> bool
  val fetch_and_add : int t -> int -> int

  val cpu_relax : unit -> unit
  (** Spin-loop hint: [Domain.cpu_relax] in production, no-op in the
      model. *)

  type 'a cell
  (** A plain (non-atomic) shared mutable cell: a bare mutable field in
      production, a traced location under the model checker so that the
      ordering of plain accesses against the surrounding release/acquire
      atomics is part of the explored state space. *)

  val cell : 'a -> 'a cell
  val read : 'a cell -> 'a
  val write : 'a cell -> 'a -> unit
end

module Native : S with type 'a t = 'a Stdlib.Atomic.t
