type region = { off : int; cap : int; mutable len : int }

type t = {
  arena : Bytes.t;
  mutable bump : int;
  free_lists : (int, region list ref) Hashtbl.t; (* class size -> free regions *)
  freed : (int, unit) Hashtbl.t; (* offsets currently free, to catch double free *)
  mutable used : int;
  mutable live : int;
}

exception Out_of_memory of int

let min_class = 16

let create ~capacity =
  if capacity < min_class then invalid_arg "Slab.create: capacity too small";
  {
    arena = Bytes.create capacity;
    bump = 0;
    free_lists = Hashtbl.create 32;
    freed = Hashtbl.create 64;
    used = 0;
    live = 0;
  }

let class_of_size len =
  if len < 0 then invalid_arg "Slab.class_of_size: negative size";
  let rec go c = if c >= len then c else go (2 * c) in
  go min_class

let free_list t cls =
  match Hashtbl.find_opt t.free_lists cls with
  | Some l -> l
  | None ->
      let l = ref [] in
      Hashtbl.add t.free_lists cls l;
      l

let alloc t len =
  let cls = class_of_size len in
  let list = free_list t cls in
  match !list with
  | r :: rest ->
      list := rest;
      Hashtbl.remove t.freed r.off;
      r.len <- len;
      t.used <- t.used + cls;
      t.live <- t.live + 1;
      r
  | [] ->
      if t.bump + cls > Bytes.length t.arena then raise (Out_of_memory len);
      let r = { off = t.bump; cap = cls; len } in
      t.bump <- t.bump + cls;
      t.used <- t.used + cls;
      t.live <- t.live + 1;
      r

let free t r =
  if Hashtbl.mem t.freed r.off then invalid_arg "Slab.free: double free";
  Hashtbl.add t.freed r.off ();
  let list = free_list t r.cap in
  list := r :: !list;
  t.used <- t.used - r.cap;
  t.live <- t.live - 1

let write t r b =
  let len = Bytes.length b in
  if len > r.cap then invalid_arg "Slab.write: data exceeds region capacity";
  Bytes.blit b 0 t.arena r.off len;
  r.len <- len

let read t r = Bytes.sub t.arena r.off r.len

let blit_to t r dst pos = Bytes.blit t.arena r.off dst pos r.len

let used_bytes t = t.used

let capacity t = Bytes.length t.arena

let live_regions t = t.live
