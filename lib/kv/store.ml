type guard = [ `Crew | `Lock ]

let slots_per_bucket = 7

type slot = {
  mutable tag : int; (* 0 = empty *)
  mutable key : string;
  mutable region : Slab.region option;
}

type bucket = { slots : slot array; mutable overflow : bucket option }

type chain = { epoch : int Atomic.t; head : bucket }

type partition = { chains : chain array; lock : Spinlock.t }

type t = {
  partition_bits : int;
  bucket_bits : int;
  partitions : partition array;
  slab : Slab.t;
  items : int Atomic.t;
  overflow_count : int Atomic.t;
}

let fresh_bucket () =
  {
    slots = Array.init slots_per_bucket (fun _ -> { tag = 0; key = ""; region = None });
    overflow = None;
  }

let create ?(partition_bits = 4) ?(bucket_bits = 10) ?(value_arena_bytes = 256 * 1024 * 1024)
    () =
  let n_part = 1 lsl partition_bits in
  let n_buck = 1 lsl bucket_bits in
  let mk_partition _ =
    {
      chains =
        Array.init n_buck (fun _ -> { epoch = Atomic.make 0; head = fresh_bucket () });
      lock = Spinlock.create ();
    }
  in
  {
    partition_bits;
    bucket_bits;
    partitions = Array.init n_part mk_partition;
    slab = Slab.create ~capacity:value_arena_bytes;
    items = Atomic.make 0;
    overflow_count = Atomic.make 0;
  }

let partition_count t = Array.length t.partitions

let locate t key =
  let h = Keyhash.hash key in
  let p = Keyhash.partition_of h ~bits:t.partition_bits in
  let b = Keyhash.bucket_of h ~bits:t.bucket_bits in
  let tag = Keyhash.tag_of h in
  (t.partitions.(p), t.partitions.(p).chains.(b), tag)

let partition_of_key t key =
  Keyhash.partition_of (Keyhash.hash key) ~bits:t.partition_bits

(* Walk the bucket chain, applying [f] to each slot whose tag matches and
   whose key equals [key].  Returns [f]'s result for the first match. *)
let rec find_slot bucket tag key =
  let rec scan i =
    if i >= slots_per_bucket then None
    else begin
      let s = bucket.slots.(i) in
      if s.tag = tag && String.equal s.key key then Some s else scan (i + 1)
    end
  in
  match scan 0 with
  | Some _ as r -> r
  | None -> ( match bucket.overflow with None -> None | Some b -> find_slot b tag key)

(* Optimistic read: retry while a writer holds the chain epoch odd or the
   epoch changed underneath us. *)
let optimistic_read chain f =
  let rec attempt () =
    let e1 = Atomic.get chain.epoch in
    if e1 land 1 = 1 then begin
      Domain.cpu_relax ();
      attempt ()
    end
    else begin
      let result = f () in
      let e2 = Atomic.get chain.epoch in
      if e1 = e2 then result
      else begin
        Domain.cpu_relax ();
        attempt ()
      end
    end
  in
  attempt ()

let get t key =
  let _, chain, tag = locate t key in
  optimistic_read chain (fun () ->
      match find_slot chain.head tag key with
      | Some s -> ( match s.region with Some r -> Some (Slab.read t.slab r) | None -> None)
      | None -> None)

let size_of t key =
  let _, chain, tag = locate t key in
  optimistic_read chain (fun () ->
      match find_slot chain.head tag key with
      | Some s -> ( match s.region with Some r -> Some r.Slab.len | None -> None)
      | None -> None)

let mem t key = size_of t key <> None

(* Find an empty slot in the chain, extending it with an overflow bucket if
   necessary.  Must be called inside the write critical section. *)
let rec empty_slot t bucket =
  let rec scan i =
    if i >= slots_per_bucket then None
    else if bucket.slots.(i).tag = 0 then Some bucket.slots.(i)
    else scan (i + 1)
  in
  match scan 0 with
  | Some s -> s
  | None -> (
      match bucket.overflow with
      | Some b -> empty_slot t b
      | None ->
          let b = fresh_bucket () in
          bucket.overflow <- Some b;
          Atomic.incr t.overflow_count;
          b.slots.(0))

let begin_write chain = Atomic.incr chain.epoch (* even -> odd *)

let end_write chain = Atomic.incr chain.epoch (* odd -> even *)

let with_guard partition guard f =
  match guard with
  | `Crew -> f ()
  | `Lock -> Spinlock.with_lock partition.lock f

let put t ~guard key value =
  let partition, chain, tag = locate t key in
  with_guard partition guard (fun () ->
      match find_slot chain.head tag key with
      | Some s ->
          let old = s.region in
          (* Allocate and fill the new region before publishing it, so
             readers never observe a partially written value for the new
             pointer; the epoch protocol covers the pointer swap itself. *)
          let r = Slab.alloc t.slab (Bytes.length value) in
          Slab.write t.slab r value;
          begin_write chain;
          s.region <- Some r;
          end_write chain;
          (match old with Some r0 -> Slab.free t.slab r0 | None -> ())
      | None ->
          let r = Slab.alloc t.slab (Bytes.length value) in
          Slab.write t.slab r value;
          begin_write chain;
          let s = empty_slot t chain.head in
          s.key <- key;
          s.region <- Some r;
          s.tag <- tag (* publish last: readers scan by tag *);
          end_write chain;
          Atomic.incr t.items)

let delete t ~guard key =
  let partition, chain, tag = locate t key in
  with_guard partition guard (fun () ->
      match find_slot chain.head tag key with
      | Some s ->
          let old = s.region in
          begin_write chain;
          s.tag <- 0;
          s.key <- "";
          s.region <- None;
          end_write chain;
          (match old with Some r -> Slab.free t.slab r | None -> ());
          Atomic.decr t.items;
          true
      | None -> false)

type stats = {
  items : int;
  value_bytes : int;
  overflow_buckets : int;
  partitions : int;
}

let stats (t : t) =
  {
    items = Atomic.get t.items;
    value_bytes = Slab.used_bytes t.slab;
    overflow_buckets = Atomic.get t.overflow_count;
    partitions = partition_count t;
  }

let iter (t : t) f =
  let rec iter_bucket b =
    Array.iter
      (fun s ->
        if s.tag <> 0 then
          match s.region with Some r -> f s.key r.Slab.len | None -> ())
      b.slots;
    match b.overflow with Some b -> iter_bucket b | None -> ()
  in
  Array.iter
    (fun p -> Array.iter (fun c -> iter_bucket c.head) p.chains)
    t.partitions
