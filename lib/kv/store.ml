type guard = [ `Crew | `Lock ]

let slots_per_bucket = 7

type slot = {
  mutable tag : int; (* 0 = empty *)
  mutable key : string;
  mutable region : Slab.region option;
  mutable expires_at : float; (* absolute deadline; infinity = no TTL *)
}

type bucket = { slots : slot array; mutable overflow : bucket option }

type chain = { epoch : int Atomic.t; head : bucket }

type partition = { chains : chain array; lock : Spinlock.t }

type t = {
  partition_bits : int;
  bucket_bits : int;
  partitions : partition array;
  slab : Slab.t;
  items : int Atomic.t;
  overflow_count : int Atomic.t;
  expired : int Atomic.t;
  mutable ordered : Ordered.t option;
}

let fresh_bucket () =
  {
    slots =
      Array.init slots_per_bucket (fun _ ->
          { tag = 0; key = ""; region = None; expires_at = infinity });
    overflow = None;
  }

let create ?(partition_bits = 4) ?(bucket_bits = 10) ?(value_arena_bytes = 256 * 1024 * 1024)
    () =
  let n_part = 1 lsl partition_bits in
  let n_buck = 1 lsl bucket_bits in
  let mk_partition _ =
    {
      chains =
        Array.init n_buck (fun _ -> { epoch = Atomic.make 0; head = fresh_bucket () });
      lock = Spinlock.create ();
    }
  in
  {
    partition_bits;
    bucket_bits;
    partitions = Array.init n_part mk_partition;
    slab = Slab.create ~capacity:value_arena_bytes;
    items = Atomic.make 0;
    overflow_count = Atomic.make 0;
    expired = Atomic.make 0;
    ordered = None;
  }

let partition_count t = Array.length t.partitions

let locate t key =
  let h = Keyhash.hash key in
  let p = Keyhash.partition_of h ~bits:t.partition_bits in
  let b = Keyhash.bucket_of h ~bits:t.bucket_bits in
  let tag = Keyhash.tag_of h in
  (t.partitions.(p), t.partitions.(p).chains.(b), tag)

let partition_of_key t key =
  Keyhash.partition_of (Keyhash.hash key) ~bits:t.partition_bits

(* Walk the bucket chain, applying [f] to each slot whose tag matches and
   whose key equals [key].  Returns [f]'s result for the first match. *)
let rec find_slot bucket tag key =
  let rec scan i =
    if i >= slots_per_bucket then None
    else begin
      let s = bucket.slots.(i) in
      if s.tag = tag && String.equal s.key key then Some s else scan (i + 1)
    end
  in
  match scan 0 with
  | Some _ as r -> r
  | None -> ( match bucket.overflow with None -> None | Some b -> find_slot b tag key)

(* Optimistic read: retry while a writer holds the chain epoch odd or the
   epoch changed underneath us. *)
let optimistic_read chain f =
  let rec attempt () =
    let e1 = Atomic.get chain.epoch in
    if e1 land 1 = 1 then begin
      Domain.cpu_relax ();
      attempt ()
    end
    else begin
      let result = f () in
      let e2 = Atomic.get chain.epoch in
      if e1 = e2 then result
      else begin
        Domain.cpu_relax ();
        attempt ()
      end
    end
  in
  attempt ()

(* Lazy expiry: a read at [now] past the slot's deadline answers as if
   the item were absent.  The slot itself is reclaimed by [expire] /
   [expire_sweep] — readers hold no write permission under the epoch
   protocol.  The [neg_infinity] default makes the check free for callers
   without a clock. *)
let get ?(now = neg_infinity) t key =
  let _, chain, tag = locate t key in
  optimistic_read chain (fun () ->
      match find_slot chain.head tag key with
      | Some s when now < s.expires_at -> (
          match s.region with Some r -> Some (Slab.read t.slab r) | None -> None)
      | Some _ | None -> None)

let size_of ?(now = neg_infinity) t key =
  let _, chain, tag = locate t key in
  optimistic_read chain (fun () ->
      match find_slot chain.head tag key with
      | Some s when now < s.expires_at -> (
          match s.region with Some r -> Some r.Slab.len | None -> None)
      | Some _ | None -> None)

let mem ?now t key = size_of ?now t key <> None

(* Find an empty slot in the chain, extending it with an overflow bucket if
   necessary.  Must be called inside the write critical section. *)
let rec empty_slot t bucket =
  let rec scan i =
    if i >= slots_per_bucket then None
    else if bucket.slots.(i).tag = 0 then Some bucket.slots.(i)
    else scan (i + 1)
  in
  match scan 0 with
  | Some s -> s
  | None -> (
      match bucket.overflow with
      | Some b -> empty_slot t b
      | None ->
          let b = fresh_bucket () in
          bucket.overflow <- Some b;
          Atomic.incr t.overflow_count;
          b.slots.(0))

let begin_write chain = Atomic.incr chain.epoch (* even -> odd *)

let end_write chain = Atomic.incr chain.epoch (* odd -> even *)

let with_guard partition guard f =
  match guard with
  | `Crew -> f ()
  | `Lock -> Spinlock.with_lock partition.lock f

let index_add t key = match t.ordered with Some idx -> Ordered.add idx key | None -> ()

let index_remove t key =
  match t.ordered with Some idx -> Ordered.remove idx key | None -> ()

let put ?(expires_at = infinity) t ~guard key value =
  let partition, chain, tag = locate t key in
  with_guard partition guard (fun () ->
      match find_slot chain.head tag key with
      | Some s ->
          let old = s.region in
          (* Allocate and fill the new region before publishing it, so
             readers never observe a partially written value for the new
             pointer; the epoch protocol covers the pointer swap itself. *)
          let r = Slab.alloc t.slab (Bytes.length value) in
          Slab.write t.slab r value;
          begin_write chain;
          s.region <- Some r;
          s.expires_at <- expires_at;
          end_write chain;
          (match old with Some r0 -> Slab.free t.slab r0 | None -> ())
      | None ->
          let r = Slab.alloc t.slab (Bytes.length value) in
          Slab.write t.slab r value;
          begin_write chain;
          let s = empty_slot t chain.head in
          s.key <- key;
          s.region <- Some r;
          s.expires_at <- expires_at;
          s.tag <- tag (* publish last: readers scan by tag *);
          end_write chain;
          Atomic.incr t.items;
          index_add t key)

(* Clear a slot inside the write critical section of its chain. *)
let clear_slot t chain s =
  let old = s.region in
  begin_write chain;
  let key = s.key in
  s.tag <- 0;
  s.key <- "";
  s.region <- None;
  s.expires_at <- infinity;
  end_write chain;
  (match old with Some r -> Slab.free t.slab r | None -> ());
  Atomic.decr t.items;
  index_remove t key

let delete t ~guard key =
  let partition, chain, tag = locate t key in
  with_guard partition guard (fun () ->
      match find_slot chain.head tag key with
      | Some s ->
          clear_slot t chain s;
          true
      | None -> false)

let expire t ~guard ~now key =
  let partition, chain, tag = locate t key in
  with_guard partition guard (fun () ->
      match find_slot chain.head tag key with
      | Some s when s.expires_at <= now ->
          clear_slot t chain s;
          Atomic.incr t.expired;
          true
      | Some _ | None -> false)

let expire_sweep t ~now =
  (* Background reclamation of lapsed slots.  Always takes the partition
     spinlock: the sweeper is not a partition master, so CREW does not
     cover it. *)
  let removed = ref 0 in
  let rec sweep_bucket chain b =
    Array.iter
      (fun s ->
        if s.tag <> 0 && s.expires_at <= now then begin
          clear_slot t chain s;
          Atomic.incr t.expired;
          incr removed
        end)
      b.slots;
    match b.overflow with Some b -> sweep_bucket chain b | None -> ()
  in
  Array.iter
    (fun p ->
      Spinlock.with_lock p.lock (fun () ->
          Array.iter (fun c -> sweep_bucket c c.head) p.chains))
    t.partitions;
  !removed

let ensure_ordered t =
  match t.ordered with
  | Some _ -> ()
  | None ->
      let idx = Ordered.create () in
      (* Install the index before the backfill so writes racing with the
         backfill are captured; double insertion is idempotent. *)
      t.ordered <- Some idx;
      let rec index_bucket b =
        Array.iter (fun s -> if s.tag <> 0 then Ordered.add idx s.key) b.slots;
        match b.overflow with Some b -> index_bucket b | None -> ()
      in
      Array.iter
        (fun p -> Array.iter (fun c -> index_bucket c.head) p.chains)
        t.partitions

let scan ?(now = neg_infinity) t ~start ~count f =
  match t.ordered with
  | None -> invalid_arg "Store.scan: ensure_ordered has not been called"
  | Some idx ->
      let visited = ref 0 in
      Ordered.iter_from idx ~start (fun key ->
          if !visited >= count then false
          else begin
            (match size_of ~now t key with
            | Some len ->
                f key len;
                incr visited
            | None -> () (* deleted or lapsed since the snapshot *));
            !visited < count
          end);
      !visited

type stats = {
  items : int;
  value_bytes : int;
  overflow_buckets : int;
  partitions : int;
  expired : int;
}

let stats (t : t) =
  {
    items = Atomic.get t.items;
    value_bytes = Slab.used_bytes t.slab;
    overflow_buckets = Atomic.get t.overflow_count;
    partitions = partition_count t;
    expired = Atomic.get t.expired;
  }

let iter (t : t) f =
  let rec iter_bucket b =
    Array.iter
      (fun s ->
        if s.tag <> 0 then
          match s.region with Some r -> f s.key r.Slab.len | None -> ())
      b.slots;
    match b.overflow with Some b -> iter_bucket b | None -> ()
  in
  Array.iter
    (fun p -> Array.iter (fun c -> iter_bucket c.head) p.chains)
    t.partitions
