(** Test-and-test-and-set spinlock.

    Guards PUTs on keys whose master core is a large core (§4.2): those
    writes can be issued from any core, so CREW's lock-free write path does
    not apply.  Contention is expected to be very low (large keys are rare
    and sharded by size range), so a spinlock beats a mutex. *)

type t

val create : unit -> t

val try_lock : t -> bool

val lock : t -> unit
(** Spins (with [Domain.cpu_relax]) until acquired. *)

val unlock : t -> unit

val with_lock : t -> (unit -> 'a) -> 'a
(** Runs the thunk under the lock; always releases, even on exception. *)
