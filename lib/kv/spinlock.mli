(** Test-and-test-and-set spinlock.

    Guards PUTs on keys whose master core is a large core (§4.2): those
    writes can be issued from any core, so CREW's lock-free write path does
    not apply.  Contention is expected to be very low (large keys are rare
    and sharded by size range), so a spinlock beats a mutex.

    Memory-model contract (OCaml 5, see DESIGN.md §8): [lock]'s successful
    [Atomic.exchange] is an acquire, [unlock]'s [Atomic.set] a release, so
    plain accesses inside the critical section cannot leak outside it.
    The interleaving model checker in lib/check verifies mutual exclusion
    exhaustively via [Make]. *)

(** Operations provided by every instantiation. *)
module type S = sig
  type t

  val create : unit -> t

  val try_lock : t -> bool

  val lock : t -> unit
  (** Spins (with [cpu_relax]) until acquired. *)

  val unlock : t -> unit

  val with_lock : t -> (unit -> 'a) -> 'a
  (** Runs the thunk under the lock; always releases, even on exception. *)
end

(** The spinlock over an explicit atomics implementation, for the model
    checker.  Production uses the specialized default below (same
    algorithm on [Stdlib.Atomic], no functor indirection). *)
module Make (_ : Atomic_ops.S) : S

include S
