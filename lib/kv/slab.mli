(** Segregated-fits slab allocator over a pre-allocated byte arena.

    Stands in for the DPDK memory manager / MICA segregated-fits allocator
    (§4.2): all value memory comes from one statically allocated region,
    carved into power-of-two size classes with per-class free lists.  A
    freed region is recycled by its class, so steady-state operation does
    no OCaml allocation on the value path. *)

type t

type region = private { off : int; cap : int; mutable len : int }
(** A slice of the arena: [cap] bytes starting at [off], of which [len]
    currently hold data. *)

exception Out_of_memory of int
(** Raised by {!alloc} when the arena cannot satisfy a request of the given
    size. *)

val create : capacity:int -> t
(** [create ~capacity] pre-allocates a [capacity]-byte arena.
    [min_class <= capacity] required. *)

val min_class : int
(** Smallest allocation class in bytes (16). *)

val class_of_size : int -> int
(** The power-of-two class that a request of this many bytes is rounded up
    to.  Exposed for tests and occupancy accounting. *)

val alloc : t -> int -> region
(** [alloc t len] returns a region with [cap >= len] and [len] set.
    O(1) when the class free list is non-empty, otherwise bump-allocates. *)

val free : t -> region -> unit
(** Return a region to its class free list.  Freeing twice is detected and
    raises [Invalid_argument]. *)

val write : t -> region -> bytes -> unit
(** [write t r b] copies [b] into the region and updates [r.len].  Raises
    [Invalid_argument] if [b] exceeds [r.cap]. *)

val read : t -> region -> bytes
(** A fresh copy of the region's current contents. *)

val blit_to : t -> region -> bytes -> int -> unit
(** [blit_to t r dst pos] copies the region's contents into [dst] at
    [pos]. *)

val used_bytes : t -> int
(** Bytes currently handed out (sum of caps of live regions). *)

val capacity : t -> int

val live_regions : t -> int
