module SMap = Map.Make (String)

type t = { snapshot : unit SMap.t Atomic.t; lock : Spinlock.t }

let create () = { snapshot = Atomic.make SMap.empty; lock = Spinlock.create () }

let add t key =
  Spinlock.with_lock t.lock (fun () ->
      Atomic.set t.snapshot (SMap.add key () (Atomic.get t.snapshot)))

let remove t key =
  Spinlock.with_lock t.lock (fun () ->
      Atomic.set t.snapshot (SMap.remove key (Atomic.get t.snapshot)))

let cardinal t = SMap.cardinal (Atomic.get t.snapshot)

let mem t key = SMap.mem key (Atomic.get t.snapshot)

let iter_from t ~start f =
  (* Readers walk an immutable snapshot: concurrent writers publish a new
     map, so a scan never observes a half-applied mutation (it may miss
     keys inserted after the scan started, which is the documented
     non-linearizable contract). *)
  let rec walk seq =
    match seq () with
    | Seq.Nil -> ()
    | Seq.Cons ((key, ()), rest) -> if f key then walk rest
  in
  walk (SMap.to_seq_from start (Atomic.get t.snapshot))
