let fnv_offset = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

let avalanche z =
  let z = Int64.(mul (logxor z (shift_right_logical z 33)) 0xFF51AFD7ED558CCDL) in
  let z = Int64.(mul (logxor z (shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L) in
  Int64.(logxor z (shift_right_logical z 33))

let hash key =
  let h = ref fnv_offset in
  for i = 0 to String.length key - 1 do
    h := Int64.logxor !h (Int64.of_int (Char.code (String.unsafe_get key i)));
    h := Int64.mul !h fnv_prime
  done;
  avalanche !h

let mask_of_bits bits =
  if bits < 0 || bits > 30 then invalid_arg "Keyhash: bits out of [0, 30]";
  (1 lsl bits) - 1

let partition_of h ~bits =
  let m = mask_of_bits bits in
  Int64.to_int (Int64.shift_right_logical h (64 - bits)) land m

let bucket_of h ~bits =
  let m = mask_of_bits bits in
  (* Skip the low 16 tag bits. *)
  Int64.to_int (Int64.shift_right_logical h 16) land m

let tag_of h =
  let t = Int64.to_int h land 0xFFFF in
  if t = 0 then 1 else t
