(** MICA-style in-memory key-value store (§4.2 of the paper).

    Keys are split into partitions by keyhash.  Each partition is a hash
    table whose entries are cache-line-like buckets of {!slots_per_bucket}
    slots; each slot holds a 16-bit tag plus the key and a slab region with
    the value.  Overflow buckets are chained dynamically when a bucket
    fills up.

    Concurrency follows the paper's scheme:
    - GETs are optimistic: each bucket chain has a 64-bit epoch, odd while
      a write is in flight; readers snapshot the epoch, read, re-check, and
      retry on a mismatch.
    - PUTs/DELETEs either rely on CREW (the caller is the partition's
      master core, so writes are already serialized — [`Crew]) or take the
      partition spinlock ([`Lock], used for keys mastered by large cores,
      which any core may write). *)

type t

type guard = [ `Crew  (** caller is the partition master; no lock *)
             | `Lock  (** take the partition spinlock *) ]

val slots_per_bucket : int
(** 7, as in a 64-byte cache-line bucket with a header word. *)

val create :
  ?partition_bits:int -> ?bucket_bits:int -> ?value_arena_bytes:int -> unit -> t
(** [create ~partition_bits ~bucket_bits ~value_arena_bytes ()] makes a
    store with [2^partition_bits] partitions (default 4 → 16 partitions) of
    [2^bucket_bits] buckets each (default 10 → 1024), and a slab arena for
    values (default 256 MiB). *)

val partition_count : t -> int

val partition_of_key : t -> string -> int
(** The partition a key hashes to; the server layer uses this to implement
    CREW master assignment. *)

val get : ?now:float -> t -> string -> bytes option
(** Optimistic read; returns a copy of the value.  With [~now], an item
    whose TTL deadline is [<= now] answers [None] (lazy expiry) — its slot
    is reclaimed separately by {!expire} or {!expire_sweep}. *)

val size_of : ?now:float -> t -> string -> int option
(** Size of the stored value without copying it.  This is the lookup a
    Minos small core performs to classify a GET as small or large (§3). *)

val put : ?expires_at:float -> t -> guard:guard -> string -> bytes -> unit
(** Insert or update; [~expires_at] attaches an absolute TTL deadline
    (default: never expires).  Raises {!Slab.Out_of_memory} if the value
    arena is exhausted. *)

val delete : t -> guard:guard -> string -> bool
(** Remove a key; [true] if it was present. *)

val expire : t -> guard:guard -> now:float -> string -> bool
(** Reclaim the key's slot iff its deadline is [<= now]; [true] if it was
    removed.  The read path calls this after a lazy-expiry miss. *)

val expire_sweep : t -> now:float -> int
(** Walk every slot and reclaim those whose deadline is [<= now]; returns
    the number removed.  Takes each partition's spinlock (the sweeper is
    not a partition master, so CREW does not cover it). *)

val mem : ?now:float -> t -> string -> bool

val ensure_ordered : t -> unit
(** Build (once) the sorted key index that {!scan} walks.  After this,
    every insert/remove also maintains the index.  Idempotent. *)

val scan : ?now:float -> t -> start:string -> count:int -> (string -> int -> unit) -> int
(** [scan t ~start ~count f] visits up to [count] live items with key
    [>= start] in ascending key order, calling [f key value_size]; returns
    the number visited.  Skips items deleted or lapsed since the index
    snapshot.  Raises [Invalid_argument] unless {!ensure_ordered} ran. *)

type stats = {
  items : int;
  value_bytes : int;      (** bytes handed out by the slab (rounded to class) *)
  overflow_buckets : int; (** dynamically chained buckets *)
  partitions : int;
  expired : int;          (** slots reclaimed by {!expire} / {!expire_sweep} *)
}

val stats : t -> stats

val iter : t -> (string -> int -> unit) -> unit
(** [iter t f] calls [f key value_size] for every item.  Not linearizable
    with respect to concurrent writes; intended for tests and tooling. *)
