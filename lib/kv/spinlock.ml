type t = bool Atomic.t

let create () = Atomic.make false

let try_lock t = not (Atomic.exchange t true)

let rec lock t =
  if not (try_lock t) then begin
    (* Test-and-test-and-set: spin on plain reads to avoid cache-line
       ping-pong, then retry the exchange. *)
    while Atomic.get t do
      Domain.cpu_relax ()
    done;
    lock t
  end

let unlock t = Atomic.set t false

let with_lock t f =
  lock t;
  match f () with
  | v ->
      unlock t;
      v
  | exception e ->
      unlock t;
      raise e
