(* TTAS spinlock, twice: as a functor over the atomics implementation
   (model-checked by lib/check) and hand-specialized on Stdlib.Atomic for
   production (no flambda, so the functor would cost an indirect call per
   atomic access).  Keep the two bodies textually identical up to the
   [A.]/[Atomic.] prefix. *)

module type S = sig
  type t

  val create : unit -> t
  val try_lock : t -> bool
  val lock : t -> unit
  val unlock : t -> unit
  val with_lock : t -> (unit -> 'a) -> 'a
end

module Make (A : Atomic_ops.S) = struct
  type t = bool A.t

  let create () = A.make false

  let try_lock t = not (A.exchange t true)

  let rec lock t =
    if not (try_lock t) then begin
      (* Test-and-test-and-set: spin on plain reads to avoid cache-line
         ping-pong, then retry the exchange. *)
      while A.get t do
        A.cpu_relax ()
      done;
      lock t
    end

  let unlock t = A.set t false

  let with_lock t f =
    lock t;
    match f () with
    | v ->
        unlock t;
        v
    | exception e ->
        unlock t;
        raise e
end

(* Specialized default instantiation: [Make] with [A := Stdlib.Atomic]. *)

type t = bool Atomic.t

let create () = Atomic.make false

let try_lock t = not (Atomic.exchange t true)

let rec lock t =
  if not (try_lock t) then begin
    (* Test-and-test-and-set: spin on plain reads to avoid cache-line
       ping-pong, then retry the exchange. *)
    while Atomic.get t do
      Domain.cpu_relax ()
    done;
    lock t
  end

let unlock t = Atomic.set t false

let with_lock t f =
  lock t;
  match f () with
  | v ->
      unlock t;
      v
  | exception e ->
      unlock t;
      raise e
