(** 64-bit key hashing and hash-bit allocation.

    Following MICA (and §4.2 of the paper), one keyhash drives three
    decisions: the partition that owns the key (high bits), the bucket
    within the partition (middle bits), and a 16-bit tag stored in the
    bucket slot to filter false candidates before the full key compare. *)

val hash : string -> int64
(** FNV-1a 64 with a final avalanche mix; deterministic across runs. *)

val partition_of : int64 -> bits:int -> int
(** [partition_of h ~bits] uses the top [bits] bits: a value in
    [0, 2^bits). *)

val bucket_of : int64 -> bits:int -> int
(** [bucket_of h ~bits] uses the middle bits (below the 16 partition bits):
    a value in [0, 2^bits). *)

val tag_of : int64 -> int
(** The low 16 bits, with 0 mapped to 1 so that tag 0 can mean "empty
    slot". *)
