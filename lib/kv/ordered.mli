(** A sorted key index: the ordered view that backs SCAN.

    The store's hash table gives O(1) point lookups but no key order; this
    side index keeps the live key set in a balanced map so range reads can
    walk keys in lexicographic order.  Writers mutate under a spinlock and
    publish a fresh immutable snapshot; readers iterate snapshots without
    locking, so scans never block writers (and are not linearizable with
    respect to them — a scan may miss keys inserted after it started). *)

type t

val create : unit -> t

val add : t -> string -> unit

val remove : t -> string -> unit

val cardinal : t -> int

val mem : t -> string -> bool

val iter_from : t -> start:string -> (string -> bool) -> unit
(** [iter_from t ~start f] applies [f] to every key [>= start] in
    ascending order, stopping early when [f] returns [false]. *)
