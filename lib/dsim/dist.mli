(** Random distributions used by the workload generators. *)

module Zipf : sig
  (** Zipfian distribution over ranks [0, n), using the O(1) sampling
      method of Gray et al. ("Quickly generating billion-record synthetic
      databases", SIGMOD 1994), as popularized by YCSB.  Rank 0 is the most
      popular item.  Construction is O(n) (computes the generalized
      harmonic number); sampling is O(1). *)

  type t

  val create : n:int -> theta:float -> t
  (** [create ~n ~theta] with [n >= 1] and [0 <= theta < 1].  [theta = 0.99]
      is the YCSB default used by the paper. *)

  val n : t -> int
  val theta : t -> float

  val sample : t -> Rng.t -> int
  (** A rank in [0, n); rank 0 most likely. *)

  val prob : t -> int -> float
  (** [prob t k] is the exact probability of rank [k]. *)
end

module Alias : sig
  (** Vose's alias method: O(1) sampling from an arbitrary finite discrete
      distribution after O(k) preprocessing. *)

  type t

  val create : float array -> t
  (** [create weights] normalizes [weights] (all [>= 0], at least one
      [> 0]) into a distribution over indices [0, length). *)

  val sample : t -> Rng.t -> int
end

val uniform_int_in : Rng.t -> lo:int -> hi:int -> int
(** Uniform integer in the inclusive range \[lo, hi\]. *)

val exponential : Rng.t -> mean:float -> float
(** Re-export of {!Rng.exponential} for discoverability. *)
