(** Discrete-event simulation engine.

    A simulation is a clock (in microseconds) plus a priority queue of
    pending events.  Events are thunks scheduled at absolute or relative
    times; ties are broken by insertion order, so a run is fully
    deterministic for a given seed.

    The engine is deliberately minimal: entities (cores, NICs, clients) are
    ordinary OCaml values whose methods schedule further events by capturing
    the simulation in closures. *)

type t

val create : ?seed:int -> unit -> t
(** [create ~seed ()] makes a simulation whose clock starts at 0.0 µs and
    whose root RNG is seeded with [seed] (default 42). *)

val now : t -> float
(** Current simulated time in microseconds. *)

val rng : t -> Rng.t
(** The simulation's root RNG.  Prefer {!fork_rng} for per-entity streams. *)

val fork_rng : t -> Rng.t
(** An independent RNG stream split off the root; give each stochastic
    entity its own stream so that adding an entity does not perturb the
    others' draws. *)

val schedule_at : t -> float -> (unit -> unit) -> unit
(** [schedule_at t time f] runs [f] when the clock reaches [time].
    Scheduling in the past raises [Invalid_argument]. *)

val schedule_after : t -> float -> (unit -> unit) -> unit
(** [schedule_after t delay f] runs [f] [delay] µs from now ([delay >= 0]). *)

val run : t -> until:float -> unit
(** Process events in time order until the clock would exceed [until] or no
    events remain.  Events scheduled exactly at [until] are processed.  The
    clock is left at [until] (or at the last event time if the queue drains
    earlier). *)

val run_until_idle : t -> unit
(** Process events until none remain. *)

val pending_events : t -> int
(** Number of events currently queued. *)

val events_processed : t -> int
(** Total events executed since creation; useful for cost reporting. *)
