(** Discrete-event simulation engine.

    A simulation is a clock (in microseconds) plus a timing-wheel queue of
    pending events ({!Wheel}).  Events are scheduled at absolute or
    relative times; ties are broken by insertion order, so a run is fully
    deterministic for a given seed.

    Events come in two flavours:

    - {e closure events} ({!schedule_at}/{!schedule_after}): a thunk,
      maximally flexible, one closure allocation per event.  The escape
      hatch for cold paths.
    - {e typed events} ({!schedule_call_at}/{!schedule_call_after}): a
      handler tag registered once up front ({!register_handler}) plus two
      int operands, dispatched through the handler table without any
      per-event allocation.  Hot event kinds (service completions, TX
      frame completions, polls, control ticks) should use these.

    {!schedule_timer_after} additionally returns a {!handle} for O(1)
    cancellation — the kernel support for hedged/tied requests. *)

type t

type handle
(** Cancellation handle returned by {!schedule_timer_after}. *)

val null_handle : handle
(** A handle that never names a live timer: {!cancel} on it is a no-op
    returning [false].  An immediate int, so storing it in a
    [handle array] slot costs no allocation — use it as the rest value
    in pooled per-request handle arrays. *)

val is_null : handle -> bool
(** [is_null h] iff [h] is {!null_handle}.  Monomorphic int equality, so
    callers under the hot-path lint need no polymorphic compare. *)

val create : ?seed:int -> unit -> t
(** [create ~seed ()] makes a simulation whose clock starts at 0.0 µs and
    whose root RNG is seeded with [seed] (default 42). *)

val now : t -> float
(** Current simulated time in microseconds. *)

val rng : t -> Rng.t
(** The simulation's root RNG.  Prefer {!fork_rng} for per-entity streams. *)

val fork_rng : t -> Rng.t
(** An independent RNG stream split off the root; give each stochastic
    entity its own stream so that adding an entity does not perturb the
    others' draws. *)

val schedule_at : t -> float -> (unit -> unit) -> unit
(** [schedule_at t time f] runs [f] when the clock reaches [time].
    Scheduling in the past raises [Invalid_argument]. *)

val schedule_after : t -> float -> (unit -> unit) -> unit
(** [schedule_after t delay f] runs [f] [delay] µs from now ([delay >= 0]). *)

val register_handler : t -> (int -> int -> unit) -> int
(** [register_handler t f] adds [f] to the handler table and returns its
    tag for use with the [schedule_call_*]/[schedule_timer_*] functions.
    Registration is cold (one small allocation); call it at entity setup
    time, once per event kind. *)

val schedule_call_at : t -> float -> tag:int -> i:int -> j:int -> unit
(** [schedule_call_at t time ~tag ~i ~j] runs [handler i j] when the
    clock reaches [time], where [handler] was registered under [tag].
    Allocation-free in steady state.  Scheduling in the past raises
    [Invalid_argument]. *)

val schedule_call_after : t -> float -> tag:int -> i:int -> j:int -> unit
(** Relative-time variant of {!schedule_call_at} ([delay >= 0]). *)

val schedule_timer_after : t -> float -> tag:int -> i:int -> j:int -> handle
(** Like {!schedule_call_after} but returns a {!handle} that can cancel
    the event in O(1) before it fires. *)

val cancel : t -> handle -> bool
(** Cancel a pending timer.  Returns [false] if it already fired, was
    already cancelled, or the handle is stale (its queue slot was
    reused). *)

val run : t -> until:float -> unit
(** Process events in time order until the clock would exceed [until] or no
    events remain.  Events scheduled exactly at [until] are processed.  The
    clock is left at [until] (or at the last event time if the queue drains
    earlier). *)

val run_until_idle : t -> unit
(** Process events until none remain. *)

val pending_events : t -> int
(** Number of events currently queued. *)

val events_processed : t -> int
(** Total events executed since creation; useful for cost reporting. *)
