(** Deterministic pseudo-random number generation for simulations.

    The simulator must be fully deterministic for a given seed so that
    experiments are reproducible and failures can be replayed.  We use a
    native-integer variant of SplitMix64 (Steele et al., "Fast splittable
    pseudorandom number generators", OOPSLA 2014): tiny, fast,
    allocation-free per draw (Int64 state would box on every operation),
    and it supports cheap splitting, which we use to derive independent
    streams for clients, the NIC and each core. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator.  Two generators created with
    the same seed produce identical streams. *)

val split : t -> t
(** [split t] derives a new generator whose stream is statistically
    independent of [t]'s subsequent output. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy and the original then
    produce identical streams. *)

val bits64 : t -> int64
(** Next raw output, sign-extended to 64 bits (the generator itself works
    on 63-bit native integers). *)

val int : t -> int -> int
(** [int t n] is uniform in \[0, n).  Requires [n > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in \[0, x).  Requires [x > 0]. *)

val unit_float : t -> float
(** Uniform in \[0, 1), with 53 bits of precision. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean (inverse-CDF
    method).  Used for Poisson inter-arrival times. *)
