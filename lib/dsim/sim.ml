(* The clock lives in its own all-float record: float-only records use
   the flat layout, so the per-event [clock <- time] store does not box
   (it would in this mixed record). *)
type clock_cell = { mutable now_us : float }

type t = {
  clock : clock_cell;
  mutable seq : int;
  mutable processed : int;
  events : (unit -> unit) Heap.t;
  root_rng : Rng.t;
}

let create ?(seed = 42) () =
  { clock = { now_us = 0.0 }; seq = 0; processed = 0; events = Heap.create (); root_rng = Rng.create seed }

let now t = t.clock.now_us

let rng t = t.root_rng

let fork_rng t = Rng.split t.root_rng

let schedule_at t time f =
  if time < t.clock.now_us then
    invalid_arg
      (Printf.sprintf "Sim.schedule_at: time %.3f is before now %.3f" time t.clock.now_us);
  Heap.add t.events ~time ~seq:t.seq f;
  t.seq <- t.seq + 1

let schedule_after t delay f =
  if delay < 0.0 then invalid_arg "Sim.schedule_after: negative delay";
  schedule_at t (t.clock.now_us +. delay) f

let run t ~until =
  let rec loop () =
    if not (Heap.is_empty t.events) then begin
      let time = Heap.min_time t.events in
      if time <= until then begin
        let f = Heap.pop t.events in
        t.clock.now_us <- time;
        t.processed <- t.processed + 1;
        f ();
        loop ()
      end
    end
  in
  loop ();
  if t.clock.now_us < until then t.clock.now_us <- until

let run_until_idle t =
  let rec loop () =
    if not (Heap.is_empty t.events) then begin
      let time = Heap.min_time t.events in
      let f = Heap.pop t.events in
      t.clock.now_us <- time;
      t.processed <- t.processed + 1;
      f ();
      loop ()
    end
  in
  loop ()

let pending_events t = Heap.length t.events

let events_processed t = t.processed
