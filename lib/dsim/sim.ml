type t = {
  mutable clock : float;
  mutable seq : int;
  mutable processed : int;
  events : (unit -> unit) Heap.t;
  root_rng : Rng.t;
}

let create ?(seed = 42) () =
  { clock = 0.0; seq = 0; processed = 0; events = Heap.create (); root_rng = Rng.create seed }

let now t = t.clock

let rng t = t.root_rng

let fork_rng t = Rng.split t.root_rng

let schedule_at t time f =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.schedule_at: time %.3f is before now %.3f" time t.clock);
  Heap.add t.events ~time ~seq:t.seq f;
  t.seq <- t.seq + 1

let schedule_after t delay f =
  if delay < 0.0 then invalid_arg "Sim.schedule_after: negative delay";
  schedule_at t (t.clock +. delay) f

let run t ~until =
  let rec loop () =
    match Heap.peek_min t.events with
    | Some (time, _, _) when time <= until ->
        (match Heap.pop_min t.events with
        | Some (time, _, f) ->
            t.clock <- time;
            t.processed <- t.processed + 1;
            f ();
            loop ()
        | None -> assert false)
    | Some _ | None -> ()
  in
  loop ();
  if t.clock < until then t.clock <- until

let run_until_idle t =
  let rec loop () =
    match Heap.pop_min t.events with
    | Some (time, _, f) ->
        t.clock <- time;
        t.processed <- t.processed + 1;
        f ();
        loop ()
    | None -> ()
  in
  loop ()

let pending_events t = Heap.length t.events

let events_processed t = t.processed
