(* The clock lives in its own all-float record: float-only records use
   the flat layout, so the per-event [clock <- time] store does not box
   (it would in this mixed record). *)
type clock_cell = { mutable now_us : float }

type handle = Wheel.handle

let null_handle : handle = -1
let is_null (h : handle) = h = -1

type t = {
  clock : clock_cell;
  mutable seq : int;
  mutable processed : int;
  events : (unit -> unit) Wheel.t;
  mutable handlers : (int -> int -> unit) array;
  root_rng : Rng.t;
}

let nop () = ()

let unregistered_handler (_ : int) (_ : int) =
  invalid_arg "Sim: event fired for an unregistered handler tag"

let create ?(seed = 42) () =
  {
    clock = { now_us = 0.0 };
    seq = 0;
    processed = 0;
    events = Wheel.create ~dummy:nop ();
    handlers = [||];
    root_rng = Rng.create seed;
  }

let[@inline] now t = t.clock.now_us

let rng t = t.root_rng

let fork_rng t = Rng.split t.root_rng

let register_handler t f =
  let tag = Array.length t.handlers in
  let handlers = Array.make (tag + 1) unregistered_handler in
  Array.blit t.handlers 0 handlers 0 tag;
  handlers.(tag) <- f;
  t.handlers <- handlers;
  tag

(* Cold: only reached on a programming error, so the message formatting
   lives behind the raise and costs the hot path nothing. *)
let[@inline never] reject_past time now =
  invalid_arg
    ("Sim.schedule_at: time " ^ string_of_float time ^ " is before now "
   ^ string_of_float now)

let[@inline] schedule_at t time f =
  if time < t.clock.now_us then reject_past time t.clock.now_us;
  Wheel.add t.events ~time ~seq:t.seq f;
  t.seq <- t.seq + 1

let[@inline] schedule_after t delay f =
  if delay < 0.0 then invalid_arg "Sim.schedule_after: negative delay";
  schedule_at t (t.clock.now_us +. delay) f

let[@inline] schedule_call_at t time ~tag ~i ~j =
  if time < t.clock.now_us then reject_past time t.clock.now_us;
  Wheel.add_call t.events ~time ~seq:t.seq ~tag ~i ~j;
  t.seq <- t.seq + 1

let[@inline] schedule_call_after t delay ~tag ~i ~j =
  if delay < 0.0 then invalid_arg "Sim.schedule_call_after: negative delay";
  schedule_call_at t (t.clock.now_us +. delay) ~tag ~i ~j

let schedule_timer_after t delay ~tag ~i ~j =
  if delay < 0.0 then invalid_arg "Sim.schedule_timer_after: negative delay";
  let time = t.clock.now_us +. delay in
  let h = Wheel.add_timer t.events ~time ~seq:t.seq ~tag ~i ~j in
  t.seq <- t.seq + 1;
  h

let cancel t h = Wheel.cancel t.events h

(* One iteration of the event loop: advance the clock to the head event
   and dispatch it — through the handler table for typed events (no
   allocation), by calling the payload for closure events.  [min_time]
   locates and caches the head; the [head_*] reads and the removal then
   skip the repeated validity checks, and [run]'s loop reads the head
   time exactly once per event. *)
let[@inline] dispatch_head t time =
  t.clock.now_us <- time;
  t.processed <- t.processed + 1;
  let events = t.events in
  let tag = Wheel.head_tag events in
  if tag >= 0 then begin
    let i = Wheel.head_i events and j = Wheel.head_j events in
    Wheel.drop_head events;
    t.handlers.(tag) i j
  end
  else (Wheel.pop_head events) ()

(* The drain loops are top-level recursions, not local [let rec]s: a
   local recursive function captures its environment in a closure
   allocated on every [run] call, which the @analyze zero-allocation
   proof rejects. *)
let rec run_loop t events until =
  if not (Wheel.is_empty events) then begin
    let time = Wheel.min_time events in
    if time <= until then begin
      dispatch_head t time;
      run_loop t events until
    end
  end

let[@hot] run t ~until =
  run_loop t t.events until;
  if t.clock.now_us < until then t.clock.now_us <- until

let rec run_until_idle t =
  if not (Wheel.is_empty t.events) then begin
    dispatch_head t (Wheel.min_time t.events);
    run_until_idle t
  end

let pending_events t = Wheel.length t.events

let events_processed t = t.processed
