type 'a entry = { time : float; seq : int; value : 'a }

type 'a t = { mutable arr : 'a entry array; mutable size : int }

(* A dummy entry used to fill unused slots; never observed because [size]
   bounds all reads.  We stash the first real insertion there instead of
   using Obj.magic: until then the array is empty. *)

let create () = { arr = [||]; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t entry =
  let cap = Array.length t.arr in
  let new_cap = if cap = 0 then 16 else 2 * cap in
  let arr = Array.make new_cap entry in
  Array.blit t.arr 0 arr 0 t.size;
  t.arr <- arr

let rec sift_up arr i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt arr.(i) arr.(parent) then begin
      let tmp = arr.(i) in
      arr.(i) <- arr.(parent);
      arr.(parent) <- tmp;
      sift_up arr parent
    end
  end

let rec sift_down arr size i =
  let l = (2 * i) + 1 in
  let r = l + 1 in
  let smallest = if l < size && lt arr.(l) arr.(i) then l else i in
  let smallest = if r < size && lt arr.(r) arr.(smallest) then r else smallest in
  if smallest <> i then begin
    let tmp = arr.(i) in
    arr.(i) <- arr.(smallest);
    arr.(smallest) <- tmp;
    sift_down arr size smallest
  end

let add t ~time ~seq value =
  let entry = { time; seq; value } in
  if t.size = Array.length t.arr then grow t entry;
  t.arr.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t.arr (t.size - 1)

let pop_min t =
  if t.size = 0 then None
  else begin
    let min = t.arr.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.arr.(0) <- t.arr.(t.size);
      t.arr.(t.size) <- min (* keep the slot typed; overwritten on next add *);
      sift_down t.arr t.size 0
    end;
    Some (min.time, min.seq, min.value)
  end

let peek_min t =
  if t.size = 0 then None
  else
    let e = t.arr.(0) in
    Some (e.time, e.seq, e.value)

let clear t =
  t.arr <- [||];
  t.size <- 0
