(* The event queue is the innermost loop of the simulator, so the heap is
   laid out as three parallel arrays — an unboxed [float array] of times, an
   [int array] of sequence numbers and a value array — instead of an array
   of boxed entry records.  [add] and [pop] allocate nothing in steady
   state: sifting moves a hole through the arrays rather than swapping
   entries, and the non-optional accessors ([min_time], [min_seq], [pop])
   never materialize tuples. *)

type 'a t = {
  mutable times : float array;
  mutable seqs : int array;
  mutable vals : 'a array;
  mutable size : int;
  dummy : 'a;
}

(* Unused value slots hold [dummy] so the array stays well-typed without
   [Obj.magic] and — unlike a previously stored value — keeps nothing the
   caller handed us reachable after [pop]/[clear]. *)

let create ~dummy () = { times = [||]; seqs = [||]; vals = [||]; size = 0; dummy }

let length t = t.size

let is_empty t = t.size = 0

let capacity t = Array.length t.vals

let[@cold] grow t =
  let cap = Array.length t.vals in
  let new_cap = if cap = 0 then 16 else 2 * cap in
  let times = Array.make new_cap 0.0 in
  let seqs = Array.make new_cap 0 in
  let vals = Array.make new_cap t.dummy in
  Array.blit t.times 0 times 0 t.size;
  Array.blit t.seqs 0 seqs 0 t.size;
  Array.blit t.vals 0 vals 0 t.size;
  t.times <- times;
  t.seqs <- seqs;
  t.vals <- vals

let add t ~time ~seq value =
  if t.size = Array.length t.vals then grow t;
  let times = t.times and seqs = t.seqs and vals = t.vals in
  (* Sift the hole up from the new leaf until [time, seq] fits. *)
  let i = ref t.size in
  t.size <- t.size + 1;
  let placed = ref false in
  while (not !placed) && !i > 0 do
    let p = (!i - 1) / 2 in
    let pt = times.(p) in
    if time < pt || (time = pt && seq < seqs.(p)) then begin
      times.(!i) <- pt;
      seqs.(!i) <- seqs.(p);
      vals.(!i) <- vals.(p);
      i := p
    end
    else placed := true
  done;
  times.(!i) <- time;
  seqs.(!i) <- seq;
  vals.(!i) <- value

(* Sift the root hole down, descending element [(time, seq, value)]. *)
let sift_down_root t time seq value =
  let times = t.times and seqs = t.seqs and vals = t.vals in
  let size = t.size in
  let i = ref 0 in
  let placed = ref false in
  while not !placed do
    let l = (2 * !i) + 1 in
    if l >= size then placed := true
    else begin
      let r = l + 1 in
      let c =
        if
          r < size
          && (times.(r) < times.(l) || (times.(r) = times.(l) && seqs.(r) < seqs.(l)))
        then r
        else l
      in
      let ct = times.(c) in
      if ct < time || (ct = time && seqs.(c) < seq) then begin
        times.(!i) <- ct;
        seqs.(!i) <- seqs.(c);
        vals.(!i) <- vals.(c);
        i := c
      end
      else placed := true
    end
  done;
  times.(!i) <- time;
  seqs.(!i) <- seq;
  vals.(!i) <- value

let min_time t =
  if t.size = 0 then invalid_arg "Heap.min_time: empty heap";
  t.times.(0)

let min_seq t =
  if t.size = 0 then invalid_arg "Heap.min_seq: empty heap";
  t.seqs.(0)

let min_value t =
  if t.size = 0 then invalid_arg "Heap.min_value: empty heap";
  t.vals.(0)

let pop t =
  if t.size = 0 then invalid_arg "Heap.pop: empty heap";
  let v = t.vals.(0) in
  let n = t.size - 1 in
  t.size <- n;
  if n > 0 then begin
    let lt = t.times.(n) and ls = t.seqs.(n) and lv = t.vals.(n) in
    t.vals.(n) <- t.dummy (* vacated slot: drop the reference so [lv] is collectable once popped *);
    sift_down_root t lt ls lv
  end
  else t.vals.(0) <- t.dummy;
  v

let pop_min t =
  if t.size = 0 then None
  else begin
    let time = t.times.(0) and seq = t.seqs.(0) in
    let v = pop t in
    Some (time, seq, v)
  end

let peek_min t =
  if t.size = 0 then None else Some (t.times.(0), t.seqs.(0), t.vals.(0))

let clear t =
  (* Retain the backing arrays so a reused heap does not re-grow from 16;
     overwrite the value slots with [dummy] so no stored value stays
     reachable after the clear. *)
  Array.fill t.vals 0 (Array.length t.vals) t.dummy;
  t.size <- 0
