module Zipf = struct
  type t = {
    n : int;
    theta : float;
    alpha : float;
    zetan : float;
    eta : float;
    threshold1 : float; (* zeta contribution used for the rank-1 shortcut *)
  }

  let zeta n theta =
    let sum = ref 0.0 in
    for i = 1 to n do
      sum := !sum +. (1.0 /. Float.pow (float_of_int i) theta)
    done;
    !sum

  let create ~n ~theta =
    if n < 1 then invalid_arg "Zipf.create: n must be >= 1";
    if theta < 0.0 || theta >= 1.0 then
      invalid_arg "Zipf.create: theta must be in [0, 1)";
    let zetan = zeta n theta in
    let zeta2 = zeta (min n 2) theta in
    let alpha = 1.0 /. (1.0 -. theta) in
    let eta =
      (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
      /. (1.0 -. (zeta2 /. zetan))
    in
    { n; theta; alpha; zetan; eta; threshold1 = 1.0 +. Float.pow 0.5 theta }

  let n t = t.n
  let theta t = t.theta

  let sample t rng =
    if t.n = 1 then 0
    else begin
      let u = Rng.unit_float rng in
      let uz = u *. t.zetan in
      if uz < 1.0 then 0
      else if uz < t.threshold1 then 1
      else begin
        let rank =
          int_of_float
            (float_of_int t.n *. Float.pow ((t.eta *. u) -. t.eta +. 1.0) t.alpha)
        in
        (* Floating-point rounding can push the rank to n; clamp. *)
        if rank >= t.n then t.n - 1 else if rank < 0 then 0 else rank
      end
    end

  let prob t k =
    if k < 0 || k >= t.n then invalid_arg "Zipf.prob: rank out of range";
    1.0 /. (Float.pow (float_of_int (k + 1)) t.theta *. t.zetan)
end

module Alias = struct
  type t = { prob : float array; alias : int array }

  let create weights =
    let k = Array.length weights in
    if k = 0 then invalid_arg "Alias.create: empty weights";
    Array.iter
      (fun w -> if w < 0.0 then invalid_arg "Alias.create: negative weight")
      weights;
    let total = Array.fold_left ( +. ) 0.0 weights in
    if not (total > 0.0) then invalid_arg "Alias.create: total weight must be > 0";
    let scaled = Array.map (fun w -> w *. float_of_int k /. total) weights in
    let prob = Array.make k 0.0 in
    let alias = Array.make k 0 in
    let small = Queue.create () and large = Queue.create () in
    Array.iteri
      (fun i p -> if p < 1.0 then Queue.add i small else Queue.add i large)
      scaled;
    while (not (Queue.is_empty small)) && not (Queue.is_empty large) do
      let s = Queue.pop small and l = Queue.pop large in
      prob.(s) <- scaled.(s);
      alias.(s) <- l;
      scaled.(l) <- scaled.(l) +. scaled.(s) -. 1.0;
      if scaled.(l) < 1.0 then Queue.add l small else Queue.add l large
    done;
    Queue.iter (fun i -> prob.(i) <- 1.0) small;
    Queue.iter (fun i -> prob.(i) <- 1.0) large;
    { prob; alias }

  let sample t rng =
    let k = Array.length t.prob in
    let i = Rng.int rng k in
    if Rng.unit_float rng < t.prob.(i) then i else t.alias.(i)
end

let uniform_int_in rng ~lo ~hi =
  if hi < lo then invalid_arg "Dist.uniform_int_in: empty range";
  lo + Rng.int rng (hi - lo + 1)

let exponential rng ~mean = Rng.exponential rng ~mean
