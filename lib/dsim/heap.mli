(** Array-based binary min-heap keyed by [(float, int)].

    The event queue of the simulator.  Keys are compared first by the float
    component (event time) and then by the int component (a monotonically
    increasing sequence number), which makes the ordering total and the
    simulation deterministic even when many events share a timestamp.

    The heap is stored as three parallel arrays (unboxed [float] times,
    [int] seqs, values), so [add] and the non-optional accessors below are
    allocation-free in steady state — the event loop of {!Sim} runs without
    producing minor garbage per event. *)

type 'a t

val create : dummy:'a -> unit -> 'a t
(** [create ~dummy ()] makes an empty heap.  [dummy] fills unused value
    slots so that popped/cleared values become collectable immediately; it
    is never returned by any accessor. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val capacity : 'a t -> int
(** Current backing-array capacity (for growth diagnostics and tests). *)

val add : 'a t -> time:float -> seq:int -> 'a -> unit
(** Insert an element.  O(log n); allocates only when the heap grows. *)

val min_time : 'a t -> float
(** Time key of the minimum element.  O(1).
    @raise Invalid_argument on an empty heap. *)

val min_seq : 'a t -> int
(** Sequence key of the minimum element.  O(1).
    @raise Invalid_argument on an empty heap. *)

val min_value : 'a t -> 'a
(** Value of the minimum element without removing it.  O(1).
    @raise Invalid_argument on an empty heap. *)

val pop : 'a t -> 'a
(** Remove the minimum element and return its value, without materializing
    a tuple.  Read {!min_time} first if the key is needed.  O(log n).
    @raise Invalid_argument on an empty heap. *)

val pop_min : 'a t -> (float * int * 'a) option
(** Remove and return the element with the smallest key.  O(log n).
    Allocating convenience wrapper around {!pop}; prefer
    {!is_empty}/{!min_time}/{!pop} on hot paths. *)

val peek_min : 'a t -> (float * int * 'a) option
(** Return the element with the smallest key without removing it.  O(1). *)

val clear : 'a t -> unit
(** Remove all elements.  The backing arrays (capacity) are retained so a
    reused heap does not re-grow from scratch; value slots are reset to
    [dummy], so no previously stored value stays reachable. *)
