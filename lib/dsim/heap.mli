(** Array-based binary min-heap keyed by [(float, int)].

    The event queue of the simulator.  Keys are compared first by the float
    component (event time) and then by the int component (a monotonically
    increasing sequence number), which makes the ordering total and the
    simulation deterministic even when many events share a timestamp. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> time:float -> seq:int -> 'a -> unit
(** Insert an element.  O(log n). *)

val pop_min : 'a t -> (float * int * 'a) option
(** Remove and return the element with the smallest key.  O(log n). *)

val peek_min : 'a t -> (float * int * 'a) option
(** Return the element with the smallest key without removing it.  O(1). *)

val clear : 'a t -> unit
(** Remove all elements (releases references to stored values). *)
