(* Hierarchical timing wheel with the same total order as [Heap]:
   [(time, seq)] lexicographic.  See wheel.mli for the layout overview.

   Key disciplines that make this exact (bit-identical to the heap) rather
   than approximate like a kernel timer wheel:

   - Tick-match: a chain entry parked in slot [tick land mask] is only
     *ready* when the cursor tick equals the entry's own tick.  Entries
     whose tick differs are simply kept in the chain for a later rotation.
     This makes wrap-around collisions safe (an entry 256 ticks ahead
     shares a slot with a due entry and is just skipped), and it makes
     cursor rollback safe (an entry left behind the cursor is found again
     when the cursor returns to its tick).

   - Ready-run sort: all entries due at the cursor tick are collected into
     the [run] array and insertion-sorted by [(time, seq)], so sub-tick
     ordering and same-timestamp ties resolve exactly as the heap would.
     An [add] landing on the *active* run tick appends to the run and
     marks it dirty — the remaining unconsumed suffix is re-sorted before
     the next [min_*]/[pop] — because such an event may precede entries
     already collected.

   - Rollback: an [add] at a tick before the cursor (legal on the heap,
     and reachable through [run ~until], which leaves the clock past the
     last popped event) flushes the active run back into level-0 chains
     and rewinds the cursor.  Rare and paid for only when it happens.

   The arena is parallel arrays ([times] unboxed floats; [seqs], [tags],
   operand ints; values; [next] doubling as chain link and free-list
   link), so steady-state add/pop touch no allocator.  Cancellation is
   lazy: [cancel] marks the state and drops the value; the slot itself is
   reclaimed when a chain walk, run consumption, or far-heap pop next
   encounters it. *)

let bits = 8

let slots = 1 lsl bits

let mask = slots - 1

(* Arena ids are packed into the low 24 bits of a cancellation handle,
   the (masked) sequence number into the bits above — a stale handle
   whose slot was reused fails the sequence check. *)
let id_bits = 24

let id_limit = 1 lsl id_bits

let id_mask = id_limit - 1

let seq_mask = (1 lsl 38) - 1

(* Entry states.  Cancelled states are live states shifted by 3, so
   [st >= st_cancelled] tests cancellation and [st + 3] cancels. *)
let st_free = 0

let st_chain = 1 (* linked into an l0/l1 slot chain *)

let st_run = 2 (* collected into the ready run *)

let st_far = 3 (* parked in the far-future heap *)

let st_cancelled = 4 (* 4/5/6: cancelled while in chain/run/far *)

type 'a t = {
  inv_g : float; (* 1 / granularity: time -> tick scale *)
  far_cutoff : float; (* times >= this skip tick conversion entirely *)
  dummy : 'a;
  (* arena: parallel arrays indexed by entry id *)
  mutable times : float array;
  mutable seqs : int array;
  mutable tags : int array;
  mutable iargs : int array;
  mutable jargs : int array;
  mutable vals : 'a array;
  mutable next : int array; (* chain link, or free-list link when free *)
  mutable state : int array;
  mutable free_head : int;
  mutable live : int; (* pending non-cancelled events, anywhere *)
  mutable wheel_live : int; (* live events currently in l0/l1 chains *)
  (* wheel levels: slot heads, -1 = empty *)
  l0 : int array;
  l1 : int array;
  mutable cur0 : int; (* current level-0 tick *)
  (* ready run: entry ids due at [cur0], sorted by (time, seq) *)
  mutable run : int array;
  mutable run_pos : int;
  mutable run_len : int;
  mutable run_dirty : bool;
  (* cached minimum *)
  mutable head : int;
  mutable head_far : bool; (* min lives at the top of [far] *)
  mutable head_valid : bool;
  far : int Heap.t; (* far-future fallback, keyed like the wheel *)
}

type handle = int

let create ?(granularity_us = 0.25) ~dummy () =
  if not (granularity_us > 0.0) then
    invalid_arg "Wheel.create: granularity must be > 0";
  {
    inv_g = 1.0 /. granularity_us;
    far_cutoff = float_of_int (1 lsl 60) *. granularity_us;
    dummy;
    times = [||];
    seqs = [||];
    tags = [||];
    iargs = [||];
    jargs = [||];
    vals = [||];
    next = [||];
    state = [||];
    free_head = -1;
    live = 0;
    wheel_live = 0;
    l0 = Array.make slots (-1);
    l1 = Array.make slots (-1);
    cur0 = 0;
    run = [||];
    run_pos = 0;
    run_len = 0;
    run_dirty = false;
    head = -1;
    head_far = false;
    head_valid = false;
    far = Heap.create ~dummy:(-1) ();
  }

let length t = t.live

let is_empty t = t.live = 0

let capacity t = Array.length t.state

let tick_of t time = int_of_float (time *. t.inv_g)

let[@cold] grow t =
  let cap = Array.length t.state in
  let new_cap = if cap = 0 then 256 else 2 * cap in
  if new_cap > id_limit then invalid_arg "Wheel: pending-event limit exceeded";
  let times = Array.make new_cap 0.0 in
  let seqs = Array.make new_cap 0 in
  let tags = Array.make new_cap (-1) in
  let iargs = Array.make new_cap 0 in
  let jargs = Array.make new_cap 0 in
  let vals = Array.make new_cap t.dummy in
  let next = Array.make new_cap (-1) in
  let state = Array.make new_cap st_free in
  Array.blit t.times 0 times 0 cap;
  Array.blit t.seqs 0 seqs 0 cap;
  Array.blit t.tags 0 tags 0 cap;
  Array.blit t.iargs 0 iargs 0 cap;
  Array.blit t.jargs 0 jargs 0 cap;
  Array.blit t.vals 0 vals 0 cap;
  Array.blit t.next 0 next 0 cap;
  Array.blit t.state 0 state 0 cap;
  (* thread the new slots onto the free list *)
  for i = cap to new_cap - 2 do
    next.(i) <- i + 1
  done;
  next.(new_cap - 1) <- t.free_head;
  t.free_head <- cap;
  t.times <- times;
  t.seqs <- seqs;
  t.tags <- tags;
  t.iargs <- iargs;
  t.jargs <- jargs;
  t.vals <- vals;
  t.next <- next;
  t.state <- state

let[@inline] alloc t =
  if t.free_head < 0 then grow t;
  let id = t.free_head in
  t.free_head <- t.next.(id);
  id

let free t id =
  t.state.(id) <- st_free;
  (* Typed slots never wrote [vals] (it still holds [dummy]), so only
     closure slots need the release store — skipping it spares the GC
     write barrier on the typed-event fast path. *)
  if t.tags.(id) < 0 then t.vals.(id) <- t.dummy;
  t.next.(id) <- t.free_head;
  t.free_head <- id

let[@cold] grow_run t =
  let cap = Array.length t.run in
  let new_cap = if cap = 0 then 64 else 2 * cap in
  let run = Array.make new_cap (-1) in
  Array.blit t.run 0 run 0 cap;
  t.run <- run

let append_run t id =
  if t.run_len = Array.length t.run then grow_run t;
  (* stay clean when appends arrive in key order (the common case:
     schedule-now events carry a larger seq than everything pending) *)
  (if (not t.run_dirty) && t.run_len > t.run_pos then begin
     let prev = t.run.(t.run_len - 1) in
     let pt = t.times.(prev) and it = t.times.(id) in
     if it < pt || (it = pt && t.seqs.(id) < t.seqs.(prev)) then
       t.run_dirty <- true
   end);
  t.run.(t.run_len) <- id;
  t.run_len <- t.run_len + 1

let sort_run t =
  let run = t.run and times = t.times and seqs = t.seqs in
  for k = t.run_pos + 1 to t.run_len - 1 do
    let id = run.(k) in
    let ti = times.(id) and si = seqs.(id) in
    let m = ref k in
    while
      !m > t.run_pos
      &&
      let p = run.(!m - 1) in
      let tp = times.(p) in
      ti < tp || (ti = tp && si < seqs.(p))
    do
      run.(!m) <- run.(!m - 1);
      decr m
    done;
    run.(!m) <- id
  done;
  t.run_dirty <- false

(* Flush the unconsumed run suffix back into level-0 chains and rewind
   the cursor: an [add] landed at a tick before [cur0].  The flushed
   entries sit ahead of the new cursor and are re-collected by
   tick-match when it returns to their tick. *)
let rewind t new_tick =
  for k = t.run_pos to t.run_len - 1 do
    let id = t.run.(k) in
    if t.state.(id) = st_run then begin
      t.state.(id) <- st_chain;
      t.wheel_live <- t.wheel_live + 1;
      let s = tick_of t t.times.(id) land mask in
      t.next.(id) <- t.l0.(s);
      t.l0.(s) <- id
    end
    else free t id (* cancelled while in the run *)
  done;
  t.run_pos <- 0;
  t.run_len <- 0;
  t.run_dirty <- false;
  t.cur0 <- new_tick

(* Place an entry whose time/seq/payload are already written.  Far-heap
   refill reuses this: the routing rules are relative to the current
   cursor, so a refilled entry lands in level 0 of the current window. *)
let insert_id t id =
  let time = t.times.(id) in
  if time >= t.far_cutoff then begin
    t.state.(id) <- st_far;
    Heap.add t.far ~time ~seq:t.seqs.(id) id
  end
  else begin
    let tick = tick_of t time in
    if t.run_pos < t.run_len && tick = t.cur0 then begin
      (* due at the active run tick: must enter the run, not the slot —
         it may order before entries already collected *)
      t.state.(id) <- st_run;
      append_run t id
    end
    else begin
      if tick < t.cur0 then rewind t tick;
      if tick - t.cur0 < slots then begin
        t.state.(id) <- st_chain;
        t.wheel_live <- t.wheel_live + 1;
        let s = tick land mask in
        t.next.(id) <- t.l0.(s);
        t.l0.(s) <- id
      end
      else begin
        let tick1 = tick asr bits in
        if tick1 - (t.cur0 asr bits) < slots then begin
          t.state.(id) <- st_chain;
          t.wheel_live <- t.wheel_live + 1;
          let s = tick1 land mask in
          t.next.(id) <- t.l1.(s);
          t.l1.(s) <- id
        end
        else begin
          t.state.(id) <- st_far;
          Heap.add t.far ~time ~seq:t.seqs.(id) id
        end
      end
    end
  end

(* Collect entries due exactly at [cur0] from its level-0 slot into the
   run; reclaim cancelled entries; keep the rest chained. *)
let collect t =
  let s = t.cur0 land mask in
  let id = ref t.l0.(s) in
  if !id >= 0 then begin
    let times = t.times and next = t.next and state = t.state in
    let kept = ref (-1) in
    while !id >= 0 do
      let i = !id in
      let nx = next.(i) in
      let st = state.(i) in
      if st >= st_cancelled then free t i
      else if tick_of t times.(i) = t.cur0 then begin
        state.(i) <- st_run;
        t.wheel_live <- t.wheel_live - 1;
        (* chain order is arbitrary, but [append_run] flags the run dirty
           exactly when an append lands out of (time, seq) order — so the
           common single-event tick skips the sort entirely *)
        append_run t i
      end
      else begin
        next.(i) <- !kept;
        kept := i
      end;
      id := nx
    done;
    t.l0.(s) <- !kept
  end

(* On entering a new level-1 window, move its due entries down to level
   0.  Entries from other rotations of the l1 slot are kept (tick-match
   at level 1). *)
let cascade t =
  let cur1 = t.cur0 asr bits in
  let s1 = cur1 land mask in
  let id = ref t.l1.(s1) in
  if !id >= 0 then begin
    let times = t.times and next = t.next and state = t.state in
    let kept = ref (-1) in
    while !id >= 0 do
      let i = !id in
      let nx = next.(i) in
      let st = state.(i) in
      if st >= st_cancelled then free t i
      else begin
        let tk = tick_of t times.(i) in
        if tk asr bits = cur1 then begin
          let s = tk land mask in
          next.(i) <- t.l0.(s);
          t.l0.(s) <- i
        end
        else begin
          next.(i) <- !kept;
          kept := i
        end
      end;
      id := nx
    done;
    t.l1.(s1) <- !kept
  end

(* Pull far-future entries due inside the current level-0 window back
   into the wheel.  Entries are pulled at most once each: anything still
   in the far heap is beyond the window end. *)
let refill t =
  let wend = ((t.cur0 asr bits) + 1) lsl bits in
  let continue_ = ref true in
  while !continue_ && not (Heap.is_empty t.far) do
    let ft = Heap.min_time t.far in
    if ft < t.far_cutoff && tick_of t ft < wend then begin
      let i = Heap.pop t.far in
      if t.state.(i) >= st_cancelled then free t i else insert_id t i
    end
    else continue_ := false
  done

(* Advance the cursor until a ready run is found.  Caller guarantees the
   run is drained and [wheel_live > 0] (or a refill just ran); each
   window crossing refills from the far heap and cascades level 1, so a
   live chain entry is always reached. *)
let rec seek t =
  t.run_pos <- 0;
  t.run_len <- 0;
  let wend = ((t.cur0 asr bits) + 1) lsl bits in
  let found = ref false in
  while (not !found) && t.cur0 < wend do
    collect t;
    if t.run_len > 0 then found := true else t.cur0 <- t.cur0 + 1
  done;
  if not !found then begin
    refill t;
    cascade t;
    if t.wheel_live > 0 then seek t
  end

let rec ensure_head t =
  if t.run_dirty then sort_run t;
  (* reclaim cancelled entries at the head of the run *)
  while t.run_pos < t.run_len && t.state.(t.run.(t.run_pos)) <> st_run do
    free t t.run.(t.run_pos);
    t.run_pos <- t.run_pos + 1
  done;
  if t.run_pos < t.run_len then begin
    t.head <- t.run.(t.run_pos);
    t.head_far <- false;
    t.head_valid <- true
  end
  else if t.wheel_live > 0 then begin
    seek t;
    ensure_head t
  end
  else begin
    (* every live event is in the far heap *)
    while not (Heap.is_empty t.far) && t.state.(Heap.min_value t.far) <> st_far do
      free t (Heap.pop t.far)
    done;
    let ft = Heap.min_time t.far in
    if ft >= t.far_cutoff then begin
      (* beyond tick arithmetic: serve straight from the heap *)
      t.head <- Heap.min_value t.far;
      t.head_far <- true;
      t.head_valid <- true
    end
    else begin
      (* the wheel is empty: jump the cursor to the next event *)
      let target = tick_of t ft in
      if target > t.cur0 then t.cur0 <- target;
      refill t;
      seek t;
      ensure_head t
    end
  end

let[@inline] add t ~time ~seq v =
  let id = alloc t in
  t.times.(id) <- time;
  t.seqs.(id) <- seq;
  t.tags.(id) <- -1;
  t.vals.(id) <- v;
  t.live <- t.live + 1;
  t.head_valid <- false;
  insert_id t id

let[@inline] add_call_id t ~time ~seq ~tag ~i ~j =
  let id = alloc t in
  t.times.(id) <- time;
  t.seqs.(id) <- seq;
  t.tags.(id) <- tag;
  t.iargs.(id) <- i;
  t.jargs.(id) <- j;
  t.live <- t.live + 1;
  t.head_valid <- false;
  insert_id t id;
  id

let[@inline] add_call t ~time ~seq ~tag ~i ~j =
  if tag < 0 then invalid_arg "Wheel.add_call: negative tag";
  ignore (add_call_id t ~time ~seq ~tag ~i ~j : int)

let add_timer t ~time ~seq ~tag ~i ~j =
  if tag < 0 then invalid_arg "Wheel.add_timer: negative tag";
  if seq < 0 then invalid_arg "Wheel.add_timer: negative seq";
  let id = add_call_id t ~time ~seq ~tag ~i ~j in
  ((seq land seq_mask) lsl id_bits) lor id

let cancel t h =
  let id = h land id_mask in
  if id >= Array.length t.state then false
  else begin
    let st = t.state.(id) in
    if
      st >= st_chain && st < st_cancelled
      && t.tags.(id) >= 0
      && t.seqs.(id) land seq_mask = h lsr id_bits
    then begin
      if st = st_chain then t.wheel_live <- t.wheel_live - 1;
      t.state.(id) <- st + 3;
      (* cancellable events are typed (tag >= 0): [vals] already holds
         [dummy], nothing to release *)
      t.live <- t.live - 1;
      t.head_valid <- false;
      true
    end
    else false
  end

let[@inline] min_time t =
  if t.live = 0 then invalid_arg "Wheel.min_time: empty wheel";
  if not t.head_valid then ensure_head t;
  t.times.(t.head)

let min_seq t =
  if t.live = 0 then invalid_arg "Wheel.min_seq: empty wheel";
  if not t.head_valid then ensure_head t;
  t.seqs.(t.head)

let min_tag t =
  if t.live = 0 then invalid_arg "Wheel.min_tag: empty wheel";
  if not t.head_valid then ensure_head t;
  t.tags.(t.head)

let min_i t =
  if t.live = 0 then invalid_arg "Wheel.min_i: empty wheel";
  if not t.head_valid then ensure_head t;
  t.iargs.(t.head)

let min_j t =
  if t.live = 0 then invalid_arg "Wheel.min_j: empty wheel";
  if not t.head_valid then ensure_head t;
  t.jargs.(t.head)

let remove_head t =
  let id = t.head in
  if t.head_far then ignore (Heap.pop t.far : int)
  else t.run_pos <- t.run_pos + 1;
  t.live <- t.live - 1;
  t.head_valid <- false;
  free t id

let pop t =
  if t.live = 0 then invalid_arg "Wheel.pop: empty wheel";
  if not t.head_valid then ensure_head t;
  let v = t.vals.(t.head) in
  remove_head t;
  v

let drop t =
  if t.live = 0 then invalid_arg "Wheel.drop: empty wheel";
  if not t.head_valid then ensure_head t;
  remove_head t

(* Unchecked head accessors for the event-loop fast path: valid only
   between a [min_time] call (which validates the cached head) and the
   next mutation.  [Sim.step] reads the head once via [min_time] and then
   takes tag/operands/payload without re-running the validity checks. *)

let[@inline] head_tag t = t.tags.(t.head)

let[@inline] head_i t = t.iargs.(t.head)

let[@inline] head_j t = t.jargs.(t.head)

let[@inline] pop_head t =
  let v = t.vals.(t.head) in
  remove_head t;
  v

let[@inline] drop_head t = remove_head t

let clear t =
  Array.fill t.l0 0 slots (-1);
  Array.fill t.l1 0 slots (-1);
  Heap.clear t.far;
  let cap = Array.length t.state in
  if cap > 0 then begin
    Array.fill t.state 0 cap st_free;
    Array.fill t.vals 0 cap t.dummy;
    for i = 0 to cap - 2 do
      t.next.(i) <- i + 1
    done;
    t.next.(cap - 1) <- -1;
    t.free_head <- 0
  end
  else t.free_head <- -1;
  t.live <- 0;
  t.wheel_live <- 0;
  t.cur0 <- 0;
  t.run_pos <- 0;
  t.run_len <- 0;
  t.run_dirty <- false;
  t.head_valid <- false
