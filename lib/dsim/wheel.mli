(** Hierarchical timing wheel keyed by [(float, int)] — the event queue of
    the simulator.

    Same total order as {!Heap} — compare by time, break ties by a
    monotonically increasing sequence number — so swapping the wheel in
    for the heap keeps every simulation bit-identical.  The difference is
    the cost profile: nearly all simulator events are near-future
    (service/TX completions within a few hundred µs), and for those the
    wheel does O(1) enqueue and amortized-O(1) dequeue instead of the
    heap's O(log n), independent of occupancy.

    Layout: two 256-slot wheel levels at [granularity_us] (default
    0.25 µs) and 256×[granularity_us] per slot respectively, plus a
    far-future fallback heap for events beyond the ~16.4 ms horizon (and
    for times too large to convert to an integer tick).  Slots hold
    intrusive singly-linked chains through a preallocated arena of
    parallel arrays (float times, int seqs/tags/operands, values), so
    steady-state [add]/[pop] allocate nothing.  Slot residency follows the
    tick-match discipline: a chain entry is only *ready* when the cursor's
    tick equals the entry's own tick, which makes wrap-around collisions —
    and even cursor rollback after {!clear}-free time travel — safe.

    Events due at the current cursor tick are collected into a small
    ready-run, insertion-sorted by [(time, seq)]; late arrivals for the
    same tick append to the run and mark it for re-sort, preserving the
    exact heap order even for same-timestamp ties.

    Two payload forms share the arena: a closure ([add]/[pop], the cold
    escape hatch) and a typed call — tag plus two int operands — that the
    simulator dispatches through a handler table without allocating
    ([add_call]/[add_timer], read via [min_tag]/[min_i]/[min_j], consumed
    with [drop]).  [add_timer] returns an O(1) cancellation {!handle}
    (lazy deletion; ABA-guarded by packing the sequence number into the
    handle). *)

type 'a t

type handle = int
(** Cancellation handle for an event added with {!add_timer}.  Packs the
    arena slot and the event's sequence number, so a stale handle (slot
    reused by a later event) is rejected by {!cancel}. *)

val create : ?granularity_us:float -> dummy:'a -> unit -> 'a t
(** [create ~dummy ()] makes an empty wheel.  [granularity_us] is the
    level-0 slot width (default 0.25 µs); events closer together than this
    still pop in exact [(time, seq)] order — granularity affects only
    bucketing cost, never ordering.  [dummy] fills unused value slots (and
    typed-event slots) so popped/cancelled values are collectable. *)

val length : 'a t -> int
(** Number of pending (non-cancelled) events.  O(1). *)

val is_empty : 'a t -> bool

val capacity : 'a t -> int
(** Current arena capacity (for growth diagnostics and tests). *)

val add : 'a t -> time:float -> seq:int -> 'a -> unit
(** Insert a closure-payload event.  O(1) amortized; allocates only when
    the arena grows. *)

val add_call : 'a t -> time:float -> seq:int -> tag:int -> i:int -> j:int -> unit
(** Insert a typed event: [tag >= 0] names a handler, [i]/[j] are its
    operands.  The value slot stays [dummy]; consume with {!drop} after
    reading {!min_tag}/{!min_i}/{!min_j}.  O(1) amortized, allocation-free
    in steady state. *)

val add_timer : 'a t -> time:float -> seq:int -> tag:int -> i:int -> j:int -> handle
(** Like {!add_call} but returns a {!handle} for O(1) cancellation.
    Requires [seq >= 0] (the handle packs the sequence number). *)

val cancel : 'a t -> handle -> bool
(** Cancel the event behind [handle].  Returns [false] if it already
    popped, was already cancelled, or the handle is stale.  O(1): the
    event is marked dead and its slot is reclaimed lazily when the cursor
    next encounters it. *)

val min_time : 'a t -> float
(** Time key of the minimum pending event.  Amortized O(1).
    @raise Invalid_argument on an empty wheel. *)

val min_seq : 'a t -> int
(** Sequence key of the minimum pending event.
    @raise Invalid_argument on an empty wheel. *)

val min_tag : 'a t -> int
(** Tag of the minimum pending event; [-1] for closure-payload events.
    @raise Invalid_argument on an empty wheel. *)

val min_i : 'a t -> int

val min_j : 'a t -> int

val pop : 'a t -> 'a
(** Remove the minimum event and return its value ([dummy] for typed
    events — use {!drop} for those).  Amortized O(1) for near-future
    events; O(log far) when serving from the far-future heap.
    @raise Invalid_argument on an empty wheel. *)

val drop : 'a t -> unit
(** Remove the minimum event without reading its value.  Same cost as
    {!pop}.
    @raise Invalid_argument on an empty wheel. *)

(** {2 Unchecked head access}

    Fast-path variants for the event loop: valid only between a call to
    {!min_time} (which locates and caches the minimum) and the next
    mutation of the wheel.  They skip the emptiness and cache-validity
    checks that every [min_*]/{!pop}/{!drop} call repeats, so a dispatch
    that reads several head fields pays for the lookup once. *)

val head_tag : 'a t -> int

val head_i : 'a t -> int

val head_j : 'a t -> int

val pop_head : 'a t -> 'a
(** Remove the (already located) head and return its value. *)

val drop_head : 'a t -> unit
(** Remove the (already located) head without reading its value. *)

val clear : 'a t -> unit
(** Remove all events (including lazily cancelled ones) and rewind the
    cursor to time zero.  The arena and slot arrays are retained; value
    slots are reset to [dummy], so nothing stays reachable. *)
