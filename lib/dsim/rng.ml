type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  (* Mix once more so the child stream is decorrelated from the parent's
     raw output. *)
  { state = mix64 s }

let copy t = { state = t.state }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let n64 = Int64.of_int n in
  let rec go () =
    let r = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem r n64 in
    if Int64.sub r v > Int64.sub Int64.max_int (Int64.sub n64 1L) then go ()
    else Int64.to_int v
  in
  go ()

let unit_float t =
  (* 53 random bits scaled into [0,1). *)
  let r = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float r *. 0x1p-53

let float t x =
  if x <= 0.0 then invalid_arg "Rng.float: bound must be positive";
  unit_float t *. x

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~mean =
  let u = unit_float t in
  (* 1 - u is in (0, 1], so log is finite. *)
  -.mean *. log1p (-.u)
