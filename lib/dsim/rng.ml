(* State and mixing use native [int] arithmetic, wrapping mod 2^63.  The
   original implementation worked on [Int64.t]; without flambda the
   compiler boxes every Int64 intermediate, which put ~8 words of minor
   allocation in each draw — inside the innermost loop of every
   simulation.  The mixer is SplitMix64's finalizer with the constants
   truncated to fit native integers (odd, near the original bit
   patterns); output quality stays far above what the simulation needs,
   and the distribution tests guard it. *)
type t = { mutable state : int }

let golden_gamma = 0x1E3779B97F4A7C15

let[@inline] mix z =
  let z = (z lxor (z lsr 30)) * 0x2F58476D1CE4E5B9 in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
  z lxor (z lsr 31)

let create seed = { state = mix seed }

let[@inline] bits t =
  t.state <- t.state + golden_gamma;
  mix t.state

let bits64 t = Int64.of_int (bits t)

let split t =
  let s = bits t in
  (* Mix once more so the child stream is decorrelated from the parent's
     raw output. *)
  { state = mix s }

let copy t = { state = t.state }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias.  A while loop instead of a
     local recursive function: the latter costs a closure allocation per
     call without flambda, and this runs once per simulated GET. *)
  let v = ref 0 and rejected = ref true in
  while !rejected do
    let r = bits t lsr 1 in
    let x = r mod n in
    if r - x <= max_int - (n - 1) then begin
      v := x;
      rejected := false
    end
  done;
  !v

let[@inline] unit_float t =
  (* 53 random bits scaled into [0,1). *)
  let r = bits t lsr 10 in
  float_of_int r *. 0x1p-53

let float t x =
  if x <= 0.0 then invalid_arg "Rng.float: bound must be positive";
  unit_float t *. x

let bool t = bits t land 1 = 1

let[@inline] exponential t ~mean =
  let u = unit_float t in
  (* 1 - u is in (0, 1], so log is finite. *)
  -.mean *. log1p (-.u)
